//! Normalization into the paper's assumed core form.
//!
//! Section 2.2 of the paper: *"W.l.o.g., we assume that all type
//! conversions are made explicit (using the conversion functions string,
//! number, and boolean). Moreover, each variable is replaced by the
//! (constant) value of the input variable binding."*  Section 4 adds the
//! `id(id(…(π)…))` → `π/id/id/…` rewriting (the id-"axis") and the removal
//! of `|` under existential contexts.
//!
//! Concretely this pass:
//!
//! 1. substitutes variables by constants from a [`Bindings`] map;
//! 2. expands zero-argument context functions (`string()` → `string(.)`,
//!    `number()`, `string-length()`, `normalize-space()`, `name()`, …);
//! 3. rewrites predicates: number-typed `[e]` becomes `[position() = e]`,
//!    any other non-boolean predicate becomes `[boolean(e)]`;
//! 4. wraps operator and function arguments in explicit `boolean`/`number`/
//!    `string` conversions where XPath 1.0 implies them (comparisons keep
//!    their overloaded operand types — Figure 1 dispatches on them);
//! 5. rewrites `id(π)` with a node-set argument into a location path ending
//!    in the id-"axis" step, so nested `id` calls become step chains;
//! 6. lifts unions out of existential contexts:
//!    `boolean(π₁|π₂)` → `boolean(π₁) or boolean(π₂)` and
//!    `(π₁|π₂) RelOp s` → `(π₁ RelOp s) or (π₂ RelOp s)` for scalar `s`
//!    (required by `propagate_path_backwards`, Section 6; semantics are
//!    preserved because the existential quantifier distributes over union);
//! 7. checks function names and arities, and rejects type errors XPath 1.0
//!    defines as static errors (`count` of a non-node-set, etc.).

use crate::ast::{AstExpr, AstPath, AstStep, CmpOp};
use crate::parser::ParseError;
use minctx_xml::axes::{Axis, NodeTest};
use std::collections::HashMap;

/// A constant value a variable can be bound to (node-set variables are out
/// of scope, as in the paper).
#[derive(Debug, Clone, PartialEq)]
pub enum Constant {
    Number(f64),
    String(String),
    Boolean(bool),
}

/// Variable bindings supplied with the query.
#[derive(Debug, Clone, Default)]
pub struct Bindings {
    map: HashMap<String, Constant>,
}

impl Bindings {
    /// Empty bindings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds `$name` to a number.
    pub fn number(mut self, name: &str, v: f64) -> Self {
        self.map.insert(name.to_string(), Constant::Number(v));
        self
    }

    /// Binds `$name` to a string.
    pub fn string(mut self, name: &str, v: &str) -> Self {
        self.map
            .insert(name.to_string(), Constant::String(v.to_string()));
        self
    }

    /// Binds `$name` to a boolean.
    pub fn boolean(mut self, name: &str, v: bool) -> Self {
        self.map.insert(name.to_string(), Constant::Boolean(v));
        self
    }

    fn get(&self, name: &str) -> Option<&Constant> {
        self.map.get(name)
    }
}

/// The static type of an expression (every XPath 1.0 expression has one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StaticType {
    NodeSet,
    Number,
    String,
    Boolean,
}

fn err(message: impl Into<String>) -> ParseError {
    ParseError {
        message: message.into(),
        offset: 0,
    }
}

/// Normalizes a parsed expression into the paper's core form.
pub fn normalize(expr: AstExpr, bindings: &Bindings) -> Result<AstExpr, ParseError> {
    let substituted = substitute(expr, bindings)?;
    norm_expr(substituted)
}

/// The static result type of a (substituted) expression.
pub fn static_type(expr: &AstExpr) -> Result<StaticType, ParseError> {
    Ok(match expr {
        AstExpr::Or(..) | AstExpr::And(..) | AstExpr::Compare(..) => StaticType::Boolean,
        AstExpr::Arith(..) | AstExpr::Neg(..) | AstExpr::Number(_) => StaticType::Number,
        AstExpr::Literal(_) => StaticType::String,
        AstExpr::Union(..) | AstExpr::Path(_) | AstExpr::Filter { .. } => StaticType::NodeSet,
        AstExpr::Var(v) => return Err(err(format!("unbound variable ${v}"))),
        AstExpr::Call(name, args) => return call_type(name, args.len()),
    })
}

fn call_type(name: &str, arity: usize) -> Result<StaticType, ParseError> {
    let (min, max, ty) = signature(name)?;
    if arity < min || arity > max {
        let expected = if min == max {
            format!("{min}")
        } else if max == usize::MAX {
            format!("at least {min}")
        } else {
            format!("{min}..{max}")
        };
        return Err(err(format!(
            "function {name}() expects {expected} argument(s), got {arity}"
        )));
    }
    Ok(ty)
}

/// `(min_arity, max_arity, result type)` of the XPath 1.0 core library.
fn signature(name: &str) -> Result<(usize, usize, StaticType), ParseError> {
    use StaticType::*;
    Ok(match name {
        "last" | "position" => (0, 0, Number),
        "count" => (1, 1, Number),
        "id" => (1, 1, NodeSet),
        "local-name" | "namespace-uri" | "name" => (0, 1, String),
        "string" => (0, 1, String),
        "concat" => (2, usize::MAX, String),
        "starts-with" | "contains" => (2, 2, Boolean),
        "substring-before" | "substring-after" => (2, 2, String),
        "substring" => (2, 3, String),
        "string-length" => (0, 1, Number),
        "normalize-space" => (0, 1, String),
        "translate" => (3, 3, String),
        "boolean" | "not" => (1, 1, Boolean),
        "true" | "false" => (0, 0, Boolean),
        "lang" => (1, 1, Boolean),
        "number" => (0, 1, Number),
        "sum" => (1, 1, Number),
        "floor" | "ceiling" | "round" => (1, 1, Number),
        other => return Err(err(format!("unknown function {other}()"))),
    })
}

// ---- step 1: variable substitution -------------------------------------

fn substitute(expr: AstExpr, b: &Bindings) -> Result<AstExpr, ParseError> {
    Ok(match expr {
        AstExpr::Var(name) => match b.get(&name) {
            Some(Constant::Number(n)) => AstExpr::Number(*n),
            Some(Constant::String(s)) => AstExpr::Literal(s.clone()),
            Some(Constant::Boolean(true)) => AstExpr::Call("true".into(), vec![]),
            Some(Constant::Boolean(false)) => AstExpr::Call("false".into(), vec![]),
            None => return Err(err(format!("unbound variable ${name}"))),
        },
        AstExpr::Or(a, c) => {
            AstExpr::Or(Box::new(substitute(*a, b)?), Box::new(substitute(*c, b)?))
        }
        AstExpr::And(a, c) => {
            AstExpr::And(Box::new(substitute(*a, b)?), Box::new(substitute(*c, b)?))
        }
        AstExpr::Compare(op, a, c) => AstExpr::Compare(
            op,
            Box::new(substitute(*a, b)?),
            Box::new(substitute(*c, b)?),
        ),
        AstExpr::Arith(op, a, c) => AstExpr::Arith(
            op,
            Box::new(substitute(*a, b)?),
            Box::new(substitute(*c, b)?),
        ),
        AstExpr::Neg(a) => AstExpr::Neg(Box::new(substitute(*a, b)?)),
        AstExpr::Union(a, c) => {
            AstExpr::Union(Box::new(substitute(*a, b)?), Box::new(substitute(*c, b)?))
        }
        AstExpr::Path(p) => AstExpr::Path(substitute_path(p, b)?),
        AstExpr::Filter {
            primary,
            predicates,
            steps,
        } => AstExpr::Filter {
            primary: Box::new(substitute(*primary, b)?),
            predicates: predicates
                .into_iter()
                .map(|p| substitute(p, b))
                .collect::<Result<_, _>>()?,
            steps: steps
                .into_iter()
                .map(|s| substitute_step(s, b))
                .collect::<Result<_, _>>()?,
        },
        AstExpr::Call(name, args) => AstExpr::Call(
            name,
            args.into_iter()
                .map(|a| substitute(a, b))
                .collect::<Result<_, _>>()?,
        ),
        leaf @ (AstExpr::Number(_) | AstExpr::Literal(_)) => leaf,
    })
}

fn substitute_path(p: AstPath, b: &Bindings) -> Result<AstPath, ParseError> {
    Ok(AstPath {
        absolute: p.absolute,
        steps: p
            .steps
            .into_iter()
            .map(|s| substitute_step(s, b))
            .collect::<Result<_, _>>()?,
    })
}

fn substitute_step(s: AstStep, b: &Bindings) -> Result<AstStep, ParseError> {
    Ok(AstStep {
        axis: s.axis,
        test: s.test,
        predicates: s
            .predicates
            .into_iter()
            .map(|p| substitute(p, b))
            .collect::<Result<_, _>>()?,
    })
}

// ---- steps 2–7: the main normalization ---------------------------------

/// A `self::node()` path (the expansion of `.`).
fn context_node_path() -> AstExpr {
    AstExpr::Path(AstPath {
        absolute: false,
        steps: vec![AstStep::simple(Axis::SelfAxis, NodeTest::AnyNode)],
    })
}

fn norm_expr(expr: AstExpr) -> Result<AstExpr, ParseError> {
    Ok(match expr {
        AstExpr::Or(a, b) => AstExpr::Or(
            Box::new(to_boolean(norm_expr(*a)?)?),
            Box::new(to_boolean(norm_expr(*b)?)?),
        ),
        AstExpr::And(a, b) => AstExpr::And(
            Box::new(to_boolean(norm_expr(*a)?)?),
            Box::new(to_boolean(norm_expr(*b)?)?),
        ),
        AstExpr::Compare(op, a, b) => {
            let a = norm_expr(*a)?;
            let b = norm_expr(*b)?;
            lift_union_in_comparison(op, a, b)?
        }
        AstExpr::Arith(op, a, b) => AstExpr::Arith(
            op,
            Box::new(to_number(norm_expr(*a)?)?),
            Box::new(to_number(norm_expr(*b)?)?),
        ),
        AstExpr::Neg(a) => AstExpr::Neg(Box::new(to_number(norm_expr(*a)?)?)),
        AstExpr::Union(a, b) => {
            let a = norm_expr(*a)?;
            let b = norm_expr(*b)?;
            require_nset(&a, "left operand of |")?;
            require_nset(&b, "right operand of |")?;
            AstExpr::Union(Box::new(a), Box::new(b))
        }
        AstExpr::Path(p) => AstExpr::Path(norm_path(p)?),
        AstExpr::Filter {
            primary,
            predicates,
            steps,
        } => {
            let primary = norm_expr(*primary)?;
            require_nset(&primary, "filter expression")?;
            let predicates = predicates
                .into_iter()
                .map(norm_predicate)
                .collect::<Result<Vec<_>, _>>()?;
            let steps = steps
                .into_iter()
                .map(norm_step)
                .collect::<Result<Vec<_>, _>>()?;
            simplify_filter(primary, predicates, steps)?
        }
        AstExpr::Call(name, args) => norm_call(name, args)?,
        AstExpr::Var(v) => return Err(err(format!("unbound variable ${v}"))),
        leaf @ (AstExpr::Number(_) | AstExpr::Literal(_)) => leaf,
    })
}

fn norm_path(p: AstPath) -> Result<AstPath, ParseError> {
    Ok(AstPath {
        absolute: p.absolute,
        steps: p
            .steps
            .into_iter()
            .map(norm_step)
            .collect::<Result<_, _>>()?,
    })
}

fn norm_step(s: AstStep) -> Result<AstStep, ParseError> {
    Ok(AstStep {
        axis: s.axis,
        test: s.test,
        predicates: s
            .predicates
            .into_iter()
            .map(norm_predicate)
            .collect::<Result<_, _>>()?,
    })
}

/// Rule 3: number predicates become positional tests, everything else
/// becomes boolean.
fn norm_predicate(p: AstExpr) -> Result<AstExpr, ParseError> {
    let p = norm_expr(p)?;
    Ok(match static_type(&p)? {
        StaticType::Boolean => p,
        StaticType::Number => AstExpr::Compare(
            CmpOp::Eq,
            Box::new(AstExpr::Call("position".into(), vec![])),
            Box::new(p),
        ),
        _ => to_boolean(p)?,
    })
}

/// Wraps in `boolean(…)` unless already boolean.
fn to_boolean(e: AstExpr) -> Result<AstExpr, ParseError> {
    Ok(match static_type(&e)? {
        StaticType::Boolean => e,
        _ => lift_union_in_boolean(e),
    })
}

/// Rule 6a: `boolean(π₁|π₂)` → `boolean(π₁) or boolean(π₂)`.
fn lift_union_in_boolean(e: AstExpr) -> AstExpr {
    match e {
        AstExpr::Union(a, b) => AstExpr::Or(
            Box::new(lift_union_in_boolean(*a)),
            Box::new(lift_union_in_boolean(*b)),
        ),
        other => AstExpr::Call("boolean".into(), vec![other]),
    }
}

/// Rule 6b: distributes scalar comparisons over union operands.
fn lift_union_in_comparison(op: CmpOp, a: AstExpr, b: AstExpr) -> Result<AstExpr, ParseError> {
    let ta = static_type(&a)?;
    let tb = static_type(&b)?;
    // Only when exactly one side is a union and the other side is scalar;
    // nset RelOp nset keeps its (non-Wadler) form.
    if ta == StaticType::NodeSet && tb != StaticType::NodeSet {
        if let AstExpr::Union(l, r) = a {
            let left = lift_union_in_comparison(op, *l, b.clone())?;
            let right = lift_union_in_comparison(op, *r, b)?;
            return Ok(AstExpr::Or(Box::new(left), Box::new(right)));
        }
    }
    if tb == StaticType::NodeSet && ta != StaticType::NodeSet {
        if let AstExpr::Union(l, r) = b {
            let left = lift_union_in_comparison(op, a.clone(), *l)?;
            let right = lift_union_in_comparison(op, a, *r)?;
            return Ok(AstExpr::Or(Box::new(left), Box::new(right)));
        }
    }
    Ok(AstExpr::Compare(op, Box::new(a), Box::new(b)))
}

/// Wraps in `number(…)` unless already a number.
fn to_number(e: AstExpr) -> Result<AstExpr, ParseError> {
    Ok(match static_type(&e)? {
        StaticType::Number => e,
        _ => AstExpr::Call("number".into(), vec![e]),
    })
}

/// Wraps in `string(…)` unless already a string.
fn to_string_arg(e: AstExpr) -> Result<AstExpr, ParseError> {
    Ok(match static_type(&e)? {
        StaticType::String => e,
        _ => AstExpr::Call("string".into(), vec![e]),
    })
}

fn require_nset(e: &AstExpr, what: &str) -> Result<(), ParseError> {
    if static_type(e)? != StaticType::NodeSet {
        return Err(err(format!("{what} must be a node-set")));
    }
    Ok(())
}

/// A `Filter` whose pieces may collapse back into a plain path:
/// `Path(p)` with no predicates and extra steps becomes one longer path.
fn simplify_filter(
    primary: AstExpr,
    predicates: Vec<AstExpr>,
    steps: Vec<AstStep>,
) -> Result<AstExpr, ParseError> {
    if predicates.is_empty() {
        if let AstExpr::Path(mut p) = primary {
            p.steps.extend(steps);
            return Ok(AstExpr::Path(p));
        }
        if steps.is_empty() {
            return Ok(primary);
        }
    }
    Ok(AstExpr::Filter {
        primary: Box::new(primary),
        predicates,
        steps,
    })
}

/// Rules 2, 4, 5 for function calls.
fn norm_call(name: String, args: Vec<AstExpr>) -> Result<AstExpr, ParseError> {
    // Arity check up front (also validates the function name).
    call_type(&name, args.len())?;
    let mut args = args
        .into_iter()
        .map(norm_expr)
        .collect::<Result<Vec<_>, _>>()?;

    match name.as_str() {
        // Rule 2: zero-argument context forms.
        "string" | "number" | "string-length" | "normalize-space" | "local-name"
        | "namespace-uri" | "name"
            if args.is_empty() =>
        {
            args.push(context_node_path());
            norm_call(name, args)
        }
        // Conversions collapse when the argument already has the target
        // type (`number(5)` = `5`).
        "string" => {
            if static_type(&args[0])? == StaticType::String {
                Ok(args.remove(0))
            } else {
                Ok(AstExpr::Call(name, args))
            }
        }
        "number" => {
            if static_type(&args[0])? == StaticType::Number {
                Ok(args.remove(0))
            } else {
                Ok(AstExpr::Call(name, args))
            }
        }
        "boolean" => {
            if static_type(&args[0])? == StaticType::Boolean {
                Ok(args.remove(0))
            } else {
                Ok(lift_union_in_boolean(args.remove(0)))
            }
        }
        // Node-set-only functions.
        "count" | "sum" => {
            require_nset(&args[0], &format!("argument of {name}()"))?;
            Ok(AstExpr::Call(name, args))
        }
        "local-name" | "namespace-uri" | "name" => {
            require_nset(&args[0], &format!("argument of {name}()"))?;
            Ok(AstExpr::Call(name, args))
        }
        // Rule 5: id() over a node-set becomes an id-"axis" step chain.
        "id" => {
            let arg = args.remove(0);
            match static_type(&arg)? {
                StaticType::NodeSet => {
                    let id_step = AstStep::simple(Axis::Id, NodeTest::AnyNode);
                    match arg {
                        AstExpr::Path(mut p) => {
                            p.steps.push(id_step);
                            Ok(AstExpr::Path(p))
                        }
                        AstExpr::Filter {
                            primary,
                            predicates,
                            mut steps,
                        } => {
                            steps.push(id_step);
                            Ok(AstExpr::Filter {
                                primary,
                                predicates,
                                steps,
                            })
                        }
                        other => Ok(AstExpr::Filter {
                            primary: Box::new(other),
                            predicates: vec![],
                            steps: vec![id_step],
                        }),
                    }
                }
                StaticType::String => Ok(AstExpr::Call("id".into(), vec![arg])),
                _ => Ok(AstExpr::Call("id".into(), vec![to_string_arg(arg)?])),
            }
        }
        // Boolean-argument functions.
        "not" => {
            let arg = to_boolean(args.remove(0))?;
            Ok(AstExpr::Call(name, vec![arg]))
        }
        // String-argument functions.
        "concat" | "starts-with" | "contains" | "substring-before" | "substring-after"
        | "translate" | "lang" | "normalize-space" | "string-length" => {
            let args = args
                .into_iter()
                .map(to_string_arg)
                .collect::<Result<Vec<_>, _>>()?;
            Ok(AstExpr::Call(name, args))
        }
        "substring" => {
            let mut it = args.into_iter();
            let s = to_string_arg(it.next().expect("arity checked"))?;
            let start = to_number(it.next().expect("arity checked"))?;
            let mut out = vec![s, start];
            if let Some(len) = it.next() {
                out.push(to_number(len)?);
            }
            Ok(AstExpr::Call(name, out))
        }
        // Number-argument functions.
        "floor" | "ceiling" | "round" => {
            let arg = to_number(args.remove(0))?;
            Ok(AstExpr::Call(name, vec![arg]))
        }
        // Nullary / context-free.
        "true" | "false" | "position" | "last" => Ok(AstExpr::Call(name, args)),
        other => Err(err(format!("unknown function {other}()"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;

    fn norm(s: &str) -> AstExpr {
        normalize(parse_expr(s).unwrap(), &Bindings::default())
            .unwrap_or_else(|e| panic!("normalize {s:?}: {e}"))
    }

    fn norm_str(s: &str) -> String {
        norm(s).to_string()
    }

    #[test]
    fn number_predicates_become_positional() {
        assert_eq!(norm_str("a[3]"), "child::a[(position() = 3)]");
        assert_eq!(norm_str("a[last()]"), "child::a[(position() = last())]");
        assert_eq!(norm_str("a[1+1]"), "child::a[(position() = (1 + 1))]");
    }

    #[test]
    fn nset_predicates_become_boolean() {
        assert_eq!(norm_str("a[b]"), "child::a[boolean(child::b)]");
        assert_eq!(norm_str("a['x']"), "child::a[boolean('x')]");
    }

    #[test]
    fn boolean_predicates_stay() {
        assert_eq!(norm_str("a[b = 1]"), "child::a[(child::b = 1)]");
    }

    #[test]
    fn and_or_arguments_become_boolean() {
        assert_eq!(norm_str("a and 1"), "(boolean(child::a) and boolean(1))");
        assert_eq!(norm_str("true() or b"), "(true() or boolean(child::b))");
    }

    #[test]
    fn arithmetic_arguments_become_numbers() {
        assert_eq!(norm_str("a + 1"), "(number(child::a) + 1)");
        assert_eq!(norm_str("-'3'"), "(-number('3'))");
        assert_eq!(norm_str("1 + 2"), "(1 + 2)");
    }

    #[test]
    fn comparisons_keep_operand_types() {
        // Figure 1 dispatches nset × num directly; no conversion inserted.
        assert_eq!(norm_str("a = 100"), "(child::a = 100)");
        assert_eq!(norm_str("a = b"), "(child::a = child::b)");
    }

    #[test]
    fn zero_arg_context_functions_expand() {
        assert_eq!(norm_str("string()"), "string(self::node())");
        assert_eq!(
            norm_str("string-length()"),
            "string-length(string(self::node()))"
        );
        assert_eq!(
            norm_str("normalize-space()"),
            "normalize-space(string(self::node()))"
        );
        assert_eq!(norm_str("number()"), "number(self::node())");
        assert_eq!(norm_str("name()"), "name(self::node())");
    }

    #[test]
    fn redundant_conversions_collapse() {
        assert_eq!(norm_str("number(5)"), "5");
        assert_eq!(norm_str("string('x')"), "'x'");
        assert_eq!(norm_str("boolean(true())"), "true()");
        assert_eq!(norm_str("boolean(1 = 1)"), "(1 = 1)");
    }

    #[test]
    fn id_of_path_becomes_id_step() {
        assert_eq!(norm_str("id(/a)"), "/child::a/id::node()");
        assert_eq!(norm_str("id(id(/a))"), "/child::a/id::node()/id::node()");
    }

    #[test]
    fn id_of_scalar_wraps_string() {
        assert_eq!(norm_str("id('x')"), "id('x')");
        assert_eq!(norm_str("id(5)"), "id(string(5))");
        // Nested: id over id over a string.
        assert_eq!(norm_str("id(id('x'))"), "(id('x'))/id::node()");
    }

    #[test]
    fn union_lifting_under_boolean() {
        assert_eq!(
            norm_str("boolean(a | b)"),
            "(boolean(child::a) or boolean(child::b))"
        );
        // Triple union lifts fully.
        assert_eq!(
            norm_str("boolean(a | b | c)"),
            "((boolean(child::a) or boolean(child::b)) or boolean(child::c))"
        );
        // In a predicate position the same lifting applies.
        assert_eq!(
            norm_str("x[a | b]"),
            "child::x[(boolean(child::a) or boolean(child::b))]"
        );
    }

    #[test]
    fn union_lifting_under_scalar_comparison() {
        assert_eq!(
            norm_str("(a | b) = 100"),
            "((child::a = 100) or (child::b = 100))"
        );
        assert_eq!(
            norm_str("100 = (a | b)"),
            "((100 = child::a) or (100 = child::b))"
        );
        // nset RelOp nset is *not* lifted.
        assert_eq!(
            norm_str("(a | b) = c"),
            "((child::a | child::b) = child::c)"
        );
    }

    #[test]
    fn variables_substitute() {
        let b = Bindings::new()
            .number("n", 5.0)
            .string("s", "hi")
            .boolean("t", true);
        let e = normalize(parse_expr("$n + 1").unwrap(), &b).unwrap();
        assert_eq!(e.to_string(), "(5 + 1)");
        let e = normalize(parse_expr("a[$t]").unwrap(), &b).unwrap();
        assert_eq!(e.to_string(), "child::a[true()]");
        let e = normalize(parse_expr("contains($s, 'h')").unwrap(), &b).unwrap();
        assert_eq!(e.to_string(), "contains('hi', 'h')");
        assert!(normalize(parse_expr("$missing").unwrap(), &Bindings::new()).is_err());
    }

    #[test]
    fn arity_errors() {
        assert!(normalize(parse_expr("count()").unwrap(), &Bindings::new()).is_err());
        assert!(normalize(parse_expr("count(a, b)").unwrap(), &Bindings::new()).is_err());
        assert!(normalize(parse_expr("true(1)").unwrap(), &Bindings::new()).is_err());
        assert!(normalize(parse_expr("nosuchfn(1)").unwrap(), &Bindings::new()).is_err());
        assert!(normalize(parse_expr("substring('a')").unwrap(), &Bindings::new()).is_err());
    }

    #[test]
    fn type_errors() {
        // count/sum of a non-node-set is a static error.
        assert!(normalize(parse_expr("count(1)").unwrap(), &Bindings::new()).is_err());
        assert!(normalize(parse_expr("sum('x')").unwrap(), &Bindings::new()).is_err());
        // Union operands must be node-sets.
        assert!(normalize(parse_expr("1 | a").unwrap(), &Bindings::new()).is_err());
    }

    #[test]
    fn string_function_arguments_convert() {
        assert_eq!(
            norm_str("contains(a, 5)"),
            "contains(string(child::a), string(5))"
        );
        assert_eq!(
            norm_str("substring(a, b, 2)"),
            "substring(string(child::a), number(child::b), 2)"
        );
        assert_eq!(norm_str("not(a)"), "not(boolean(child::a))");
        assert_eq!(norm_str("floor('2.5')"), "floor(number('2.5'))");
    }

    #[test]
    fn paper_query_e_normalizes() {
        let s = norm_str("/descendant::*/descendant::*[position() > last()*0.5 or self::* = 100]");
        assert_eq!(
            s,
            "/descendant::*/descendant::*[((position() > (last() * 0.5)) or (self::* = 100))]"
        );
    }

    #[test]
    fn paper_query_q_normalizes() {
        let s = norm_str(
            "/child::a/descendant::*[boolean(following::d[(position() != last()) and \
             (preceding-sibling::*/preceding::* = 100)]/following::d)]",
        );
        assert_eq!(
            s,
            "/child::a/descendant::*[boolean(following::d[((position() != last()) and \
             (preceding-sibling::*/preceding::* = 100))]/following::d)]"
        );
    }

    #[test]
    fn filter_simplification() {
        // A parenthesized path with trailing steps collapses to one path.
        assert_eq!(norm_str("(/a)/b"), "/child::a/child::b");
        // With predicates it stays a filter.
        let e = norm("(/a)[1]/b");
        assert!(matches!(e, AstExpr::Filter { .. }));
    }

    #[test]
    fn deeply_nested_normalization() {
        let s = norm_str("a[b[c[d[5]]]]");
        assert_eq!(
            s,
            "child::a[boolean(child::b[boolean(child::c[boolean(child::d[(position() = 5)])])])]"
        );
    }
}

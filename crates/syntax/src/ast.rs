//! The parsed XPath 1.0 abstract syntax tree.
//!
//! [`AstExpr`] mirrors the surface grammar (after abbreviation expansion,
//! which the parser performs: `//` becomes a `descendant-or-self::node()`
//! step, `.` becomes `self::node()`, `..` becomes `parent::node()`, `@n`
//! becomes `attribute::n`, and a step without an axis gets `child::`).
//!
//! The [`normalize`](crate::normalize) pass transforms this tree into the
//! paper's assumed core form; [`query::lower`](crate::query::lower) then
//! produces the arena representation used by the evaluators.

use minctx_xml::axes::{Axis, NodeTest};
use std::fmt;

/// Comparison operators (`RelOp` / `EqOp` in Figure 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// Whether this is one of the equality operators (`=`, `!=`), which
    /// have different mixed-type semantics than the relational ones.
    pub fn is_equality(self) -> bool {
        matches!(self, CmpOp::Eq | CmpOp::Neq)
    }

    /// The XPath spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Neq => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    /// The comparison with operand order swapped (`a op b ⇔ b op.swap() a`).
    pub fn swapped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Neq => CmpOp::Neq,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Arithmetic operators (`ArithOp` in Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

impl ArithOp {
    /// The XPath spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "div",
            ArithOp::Mod => "mod",
        }
    }
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A parsed XPath 1.0 expression.
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    /// `e1 or e2`
    Or(Box<AstExpr>, Box<AstExpr>),
    /// `e1 and e2`
    And(Box<AstExpr>, Box<AstExpr>),
    /// `e1 RelOp e2`
    Compare(CmpOp, Box<AstExpr>, Box<AstExpr>),
    /// `e1 ArithOp e2`
    Arith(ArithOp, Box<AstExpr>, Box<AstExpr>),
    /// `- e`
    Neg(Box<AstExpr>),
    /// `e1 | e2`
    Union(Box<AstExpr>, Box<AstExpr>),
    /// A location path.
    Path(AstPath),
    /// A filter expression with an optional trailing relative path:
    /// `primary[p1]…[pk]` or `primary[p]…/step/step…`.
    Filter {
        primary: Box<AstExpr>,
        predicates: Vec<AstExpr>,
        /// Trailing location steps (empty when the filter stands alone).
        steps: Vec<AstStep>,
    },
    /// A function call with an as-yet unresolved name.
    Call(String, Vec<AstExpr>),
    /// `$name`
    Var(String),
    /// A number literal.
    Number(f64),
    /// A string literal.
    Literal(String),
}

/// A parsed location path.
#[derive(Debug, Clone, PartialEq)]
pub struct AstPath {
    /// `true` for `/…` (evaluation starts at the root).
    pub absolute: bool,
    pub steps: Vec<AstStep>,
}

/// One location step `axis::test[pred]…[pred]`.
#[derive(Debug, Clone, PartialEq)]
pub struct AstStep {
    pub axis: Axis,
    pub test: NodeTest,
    pub predicates: Vec<AstExpr>,
}

impl AstStep {
    /// A step with no predicates.
    pub fn simple(axis: Axis, test: NodeTest) -> AstStep {
        AstStep {
            axis,
            test,
            predicates: Vec::new(),
        }
    }
}

impl AstExpr {
    /// Convenience: a `boolean(e)` call.
    pub fn boolean(e: AstExpr) -> AstExpr {
        AstExpr::Call("boolean".to_string(), vec![e])
    }

    /// Convenience: a `string(e)` call.
    pub fn string(e: AstExpr) -> AstExpr {
        AstExpr::Call("string".to_string(), vec![e])
    }

    /// Convenience: a `number(e)` call.
    pub fn number_of(e: AstExpr) -> AstExpr {
        AstExpr::Call("number".to_string(), vec![e])
    }

    /// Whether the expression is syntactically a location path (possibly
    /// the bare `/`).
    pub fn is_path(&self) -> bool {
        matches!(self, AstExpr::Path(_))
    }
}

impl fmt::Display for AstExpr {
    /// Renders in unabbreviated XPath syntax; reparsing the result yields
    /// an equal tree (property-tested in the parser module).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AstExpr::Or(a, b) => write!(f, "({a} or {b})"),
            AstExpr::And(a, b) => write!(f, "({a} and {b})"),
            AstExpr::Compare(op, a, b) => write!(f, "({a} {op} {b})"),
            AstExpr::Arith(op, a, b) => write!(f, "({a} {op} {b})"),
            AstExpr::Neg(e) => write!(f, "(-{e})"),
            AstExpr::Union(a, b) => write!(f, "({a} | {b})"),
            AstExpr::Path(p) => write!(f, "{p}"),
            AstExpr::Filter {
                primary,
                predicates,
                steps,
            } => {
                write!(f, "({primary})")?;
                for p in predicates {
                    write!(f, "[{p}]")?;
                }
                for s in steps {
                    write!(f, "/{s}")?;
                }
                Ok(())
            }
            AstExpr::Call(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            AstExpr::Var(v) => write!(f, "${v}"),
            AstExpr::Number(n) => {
                if n.fract() == 0.0 && n.is_finite() && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            AstExpr::Literal(s) => {
                if s.contains('\'') {
                    write!(f, "\"{s}\"")
                } else {
                    write!(f, "'{s}'")
                }
            }
        }
    }
}

impl fmt::Display for AstPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.absolute {
            write!(f, "/")?;
        }
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                write!(f, "/")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

impl fmt::Display for AstStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}::{}", self.axis, self.test)?;
        for p in &self.predicates {
            write!(f, "[{p}]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_op_swapped_is_involutive_on_strict() {
        for op in [
            CmpOp::Eq,
            CmpOp::Neq,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_eq!(op.swapped().swapped(), op);
        }
        assert_eq!(CmpOp::Lt.swapped(), CmpOp::Gt);
        assert_eq!(CmpOp::Eq.swapped(), CmpOp::Eq);
    }

    #[test]
    fn display_of_simple_expressions() {
        let e = AstExpr::Arith(
            ArithOp::Mul,
            Box::new(AstExpr::Call("last".into(), vec![])),
            Box::new(AstExpr::Number(0.5)),
        );
        assert_eq!(e.to_string(), "(last() * 0.5)");
        assert_eq!(AstExpr::Number(3.0).to_string(), "3");
        assert_eq!(AstExpr::Literal("hi".into()).to_string(), "'hi'");
        assert_eq!(AstExpr::Literal("it's".into()).to_string(), "\"it's\"");
    }

    #[test]
    fn display_of_paths() {
        let p = AstPath {
            absolute: true,
            steps: vec![
                AstStep::simple(Axis::Descendant, NodeTest::Wildcard),
                AstStep {
                    axis: Axis::Child,
                    test: NodeTest::name("b"),
                    predicates: vec![AstExpr::Number(1.0)],
                },
            ],
        };
        assert_eq!(p.to_string(), "/descendant::*/child::b[1]");
    }

    #[test]
    fn is_equality() {
        assert!(CmpOp::Eq.is_equality());
        assert!(CmpOp::Neq.is_equality());
        assert!(!CmpOp::Lt.is_equality());
    }
}

//! Lowering of the normalized AST into the evaluation-ready [`Query`] arena.
//!
//! Every evaluator in `minctx-core` works over this representation:
//!
//! * [`Query`] is an arena of [`Node`]s indexed by [`ExprId`].  Children are
//!   lowered *before* their parents, so a single forward sweep over the ids
//!   visits the parse tree bottom-up — exactly the order in which the
//!   context-value-table evaluator fills its tables.
//! * Each node carries a static [`ValueType`] (every XPath 1.0 expression
//!   has one — Section 2.2 of the paper assumes all conversions explicit,
//!   which [`normalize`](crate::normalize) guarantees).
//! * Each node carries its *relevant context* [`Relev`] (Section 3.1): the
//!   subset of the context triple `(x, k, n)` — context node, position,
//!   size — that the node's value actually depends on.  MINCONTEXT keys its
//!   memo tables on exactly these components, which is what removes the
//!   redundant dimensions from the context-value tables of the VLDB 2002
//!   predecessor algorithm.
//!
//! Location paths are *not* flattened into the arena: a [`Node::Path`] owns
//! its [`Step`] list directly (mirroring the paper's treatment of paths as
//! single parse-tree nodes with axis annotations), but every predicate is an
//! ordinary arena expression with its own `ExprId`, `ValueType` and `Relev`.

use crate::ast::{ArithOp, AstExpr, AstPath, AstStep, CmpOp};
use minctx_xml::axes::{Axis, NodeTest};
use std::collections::HashMap;
use std::fmt;

/// Index of an expression node in a [`Query`] arena.
///
/// Ids are assigned in lowering order: every child id is strictly smaller
/// than its parent's id, and the root has the largest id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(u32);

impl ExprId {
    /// The raw arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ExprId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// The static result type of an expression (Section 2.2: number, string,
/// boolean, or node-set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    NodeSet,
    Number,
    String,
    Boolean,
}

impl ValueType {
    /// Human-readable name (used in error messages).
    pub fn as_str(self) -> &'static str {
        match self {
            ValueType::NodeSet => "node-set",
            ValueType::Number => "number",
            ValueType::String => "string",
            ValueType::Boolean => "boolean",
        }
    }
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The relevant context `Relev(N)` of a parse-tree node (Section 3.1): which
/// of the three context components — context *node* `x`, context *position*
/// `k`, context *size* `n` — the node's value depends on.
///
/// The paper's key observation is that full context-value tables range over
/// all triples `(x, k, n)` even when a subexpression ignores most of the
/// triple; restricting each table to `Relev(N)` is what makes MINCONTEXT's
/// space (and time) bounds minimal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Relev(u8);

impl Relev {
    /// Depends on nothing: constant over all contexts.
    pub const NONE: Relev = Relev(0);
    /// Depends on the context node `x`.
    pub const NODE: Relev = Relev(1);
    /// Depends on the context position `k` (`position()`).
    pub const POSITION: Relev = Relev(2);
    /// Depends on the context size `n` (`last()`).
    pub const SIZE: Relev = Relev(4);

    /// Set union of two relevance sets.
    #[inline]
    pub fn union(self, other: Relev) -> Relev {
        Relev(self.0 | other.0)
    }

    /// Whether every component of `other` is also relevant here.
    #[inline]
    pub fn contains(self, other: Relev) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether the context node is relevant.
    #[inline]
    pub fn node(self) -> bool {
        self.contains(Relev::NODE)
    }

    /// Whether the context position is relevant.
    #[inline]
    pub fn position(self) -> bool {
        self.contains(Relev::POSITION)
    }

    /// Whether the context size is relevant.
    #[inline]
    pub fn size(self) -> bool {
        self.contains(Relev::SIZE)
    }

    /// Whether the node is context-independent (`Relev(N) = ∅`).
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of relevant components (0–3); the dimensionality of the
    /// minimal context-value table for the node.
    pub fn arity(self) -> usize {
        self.0.count_ones() as usize
    }
}

impl fmt::Debug for Relev {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Relev {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for (bit, name) in [
            (Relev::NODE, "node"),
            (Relev::POSITION, "position"),
            (Relev::SIZE, "size"),
        ] {
            if self.contains(bit) {
                if !first {
                    write!(f, ", ")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        write!(f, "}}")
    }
}

/// The XPath 1.0 core function library, resolved from names during lowering
/// (the normalizer has already validated names, arities and argument types).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Func {
    // Context functions (Section 2.2's `position` and `last`).
    Position,
    Last,
    // Node-set functions.
    Count,
    Id,
    LocalName,
    NamespaceUri,
    Name,
    Sum,
    // String functions.
    String,
    Concat,
    StartsWith,
    Contains,
    SubstringBefore,
    SubstringAfter,
    Substring,
    StringLength,
    NormalizeSpace,
    Translate,
    // Boolean functions.
    Boolean,
    Not,
    True,
    False,
    Lang,
    // Number functions.
    Number,
    Floor,
    Ceiling,
    Round,
}

impl Func {
    /// Resolves an XPath function name.
    pub fn from_name(name: &str) -> Option<Func> {
        Some(match name {
            "position" => Func::Position,
            "last" => Func::Last,
            "count" => Func::Count,
            "id" => Func::Id,
            "local-name" => Func::LocalName,
            "namespace-uri" => Func::NamespaceUri,
            "name" => Func::Name,
            "sum" => Func::Sum,
            "string" => Func::String,
            "concat" => Func::Concat,
            "starts-with" => Func::StartsWith,
            "contains" => Func::Contains,
            "substring-before" => Func::SubstringBefore,
            "substring-after" => Func::SubstringAfter,
            "substring" => Func::Substring,
            "string-length" => Func::StringLength,
            "normalize-space" => Func::NormalizeSpace,
            "translate" => Func::Translate,
            "boolean" => Func::Boolean,
            "not" => Func::Not,
            "true" => Func::True,
            "false" => Func::False,
            "lang" => Func::Lang,
            "number" => Func::Number,
            "floor" => Func::Floor,
            "ceiling" => Func::Ceiling,
            "round" => Func::Round,
            _ => return None,
        })
    }

    /// The XPath spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Func::Position => "position",
            Func::Last => "last",
            Func::Count => "count",
            Func::Id => "id",
            Func::LocalName => "local-name",
            Func::NamespaceUri => "namespace-uri",
            Func::Name => "name",
            Func::Sum => "sum",
            Func::String => "string",
            Func::Concat => "concat",
            Func::StartsWith => "starts-with",
            Func::Contains => "contains",
            Func::SubstringBefore => "substring-before",
            Func::SubstringAfter => "substring-after",
            Func::Substring => "substring",
            Func::StringLength => "string-length",
            Func::NormalizeSpace => "normalize-space",
            Func::Translate => "translate",
            Func::Boolean => "boolean",
            Func::Not => "not",
            Func::True => "true",
            Func::False => "false",
            Func::Lang => "lang",
            Func::Number => "number",
            Func::Floor => "floor",
            Func::Ceiling => "ceiling",
            Func::Round => "round",
        }
    }

    /// Static result type.
    pub fn result_type(self) -> ValueType {
        match self {
            Func::Position
            | Func::Last
            | Func::Count
            | Func::Sum
            | Func::Number
            | Func::Floor
            | Func::Ceiling
            | Func::Round
            | Func::StringLength => ValueType::Number,
            Func::Id => ValueType::NodeSet,
            Func::LocalName
            | Func::NamespaceUri
            | Func::Name
            | Func::String
            | Func::Concat
            | Func::SubstringBefore
            | Func::SubstringAfter
            | Func::Substring
            | Func::NormalizeSpace
            | Func::Translate => ValueType::String,
            Func::StartsWith
            | Func::Contains
            | Func::Boolean
            | Func::Not
            | Func::True
            | Func::False
            | Func::Lang => ValueType::Boolean,
        }
    }

    /// The context components the function itself consumes (beyond its
    /// arguments): `position()` reads `k`, `last()` reads `n`, and `lang()`
    /// inspects the ancestry of the context node.
    pub fn own_relev(self) -> Relev {
        match self {
            Func::Position => Relev::POSITION,
            Func::Last => Relev::SIZE,
            Func::Lang => Relev::NODE,
            _ => Relev::NONE,
        }
    }
}

impl fmt::Display for Func {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where a location path starts evaluating.
#[derive(Debug, Clone, PartialEq)]
pub enum PathStart {
    /// An absolute path (`/…`): starts at the document root, independent of
    /// the context.
    Root,
    /// A relative path: starts at the context node.
    Context,
    /// A filter expression `primary[p₁]…[pₖ]/steps…`: starts from the value
    /// of `primary` (a node-set), filtered by the predicates with proximity
    /// positions taken in document order.
    Filter {
        primary: ExprId,
        predicates: Vec<ExprId>,
    },
}

/// One location step `axis::test[pred]…[pred]` of a lowered path.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    pub axis: Axis,
    pub test: NodeTest,
    /// Predicates, in application order; each is a boolean-typed arena
    /// expression (the normalizer rewrote number predicates into
    /// `position() = e` and everything else into `boolean(e)`).
    pub predicates: Vec<ExprId>,
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}::{}", self.axis, self.test)?;
        for p in &self.predicates {
            write!(f, "[{p}]")?;
        }
        Ok(())
    }
}

/// One expression node of the lowered query.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// `e1 or e2` (operands boolean after normalization).
    Or(ExprId, ExprId),
    /// `e1 and e2`.
    And(ExprId, ExprId),
    /// `e1 op e2` with XPath's overloaded comparison semantics (Figure 1
    /// dispatches on the operand types at evaluation time).
    Compare(CmpOp, ExprId, ExprId),
    /// `e1 op e2` over numbers.
    Arith(ArithOp, ExprId, ExprId),
    /// `- e`.
    Neg(ExprId),
    /// `e1 | e2` over node-sets.
    Union(ExprId, ExprId),
    /// A location path.
    Path(PathStart, Vec<Step>),
    /// A core-library function call.
    Call(Func, Vec<ExprId>),
    /// A number literal.
    Number(f64),
    /// A string literal.
    Literal(Box<str>),
}

/// A lowered, evaluation-ready XPath query: the arena parse tree with
/// relevant-context annotations.
///
/// Obtain one with [`parse_xpath`](crate::parse_xpath) or [`lower`].
#[derive(Debug, Clone)]
pub struct Query {
    nodes: Vec<Node>,
    types: Vec<ValueType>,
    relev: Vec<Relev>,
    root: ExprId,
    /// Process-unique identity assigned at lowering (clones share it);
    /// compiled-query caches key on `(query stamp, document stamp)`.
    stamp: u64,
}

// Concurrent-serving audit: queries are shared read-only across worker
// threads (plain vectors and copyable ids — no interior mutability).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Query>();
};

/// Structural equality: two independently lowered queries with the same
/// arena are equal even though their cache stamps differ.
impl PartialEq for Query {
    fn eq(&self, other: &Self) -> bool {
        self.nodes == other.nodes
            && self.types == other.types
            && self.relev == other.relev
            && self.root == other.root
    }
}

impl Query {
    /// The root expression.
    #[inline]
    pub fn root(&self) -> ExprId {
        self.root
    }

    /// A process-unique identity for this lowered query.  Clones share the
    /// stamp (their arenas are identical); independent lowerings get
    /// distinct stamps.  Compiled-query caches key on it.
    #[inline]
    pub fn stamp(&self) -> u64 {
        self.stamp
    }

    /// Number of arena nodes (the paper's `|Q|` up to the step count, which
    /// lives inside [`Node::Path`] nodes).
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena is empty (never, for a lowered query).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node behind an id.
    #[inline]
    pub fn node(&self, id: ExprId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The static result type of a node.
    #[inline]
    pub fn value_type(&self, id: ExprId) -> ValueType {
        self.types[id.index()]
    }

    /// The relevant-context set `Relev(N)` of a node (Section 3.1).
    #[inline]
    pub fn relev(&self, id: ExprId) -> Relev {
        self.relev[id.index()]
    }

    /// Iterates `(id, node)` in lowering order — children strictly before
    /// parents, root last.  A single pass is a bottom-up traversal.
    pub fn iter(&self) -> impl Iterator<Item = (ExprId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (ExprId(i as u32), n))
    }

    /// Whether the root expression is syntactically a location path.
    pub fn root_is_path(&self) -> bool {
        matches!(self.node(self.root), Node::Path(..))
    }

    /// The total number of location steps across all paths in the query
    /// (together with [`Query::len`] this bounds the paper's `|Q|`).
    pub fn step_count(&self) -> usize {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                Node::Path(_, steps) => Some(steps.len()),
                _ => None,
            })
            .sum()
    }
}

/// Lowers a normalized AST into a [`Query`].
///
/// # Panics
///
/// Panics on ASTs that did not go through [`normalize`](crate::normalize)
/// (unbound variables, unknown function names): lowering is infallible on
/// normalized input.
pub fn lower(expr: &AstExpr) -> Query {
    let mut lw = Lowerer {
        nodes: Vec::new(),
        types: Vec::new(),
        relev: Vec::new(),
    };
    let root = lw.lower_expr(expr);
    Query {
        nodes: lw.nodes,
        types: lw.types,
        relev: lw.relev,
        root,
        stamp: fresh_stamp(),
    }
}

/// Allocates a process-unique query stamp (shared by [`lower`] and
/// [`QueryBuilder::finish`], so rewritten queries get distinct cache
/// identities too).
fn fresh_stamp() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT_STAMP: AtomicU64 = AtomicU64::new(1);
    NEXT_STAMP.fetch_add(1, Ordering::Relaxed)
}

/// Incremental construction of a [`Query`] arena with hash-consing.
///
/// The rewrite pipeline in `minctx-core` rebuilds queries bottom-up through
/// this builder.  Every pushed node gets its [`ValueType`] and [`Relev`]
/// computed from its (already pushed) children by exactly the rules
/// [`lower`] uses, and **structurally identical nodes are interned to a
/// single [`ExprId`]** — common-subexpression sharing across union branches
/// is therefore node-id interning, not tree surgery: evaluators that memoize
/// or materialize per `ExprId` do the shared work once.
///
/// Children must be pushed before the parents that reference them (the
/// arena invariant every evaluator's bottom-up sweep relies on); the
/// builder debug-asserts it.
#[derive(Debug, Default)]
pub struct QueryBuilder {
    nodes: Vec<Node>,
    types: Vec<ValueType>,
    relev: Vec<Relev>,
    /// Canonical structural key ([`intern_key`]) → interned id.
    interned: HashMap<String, ExprId>,
}

impl QueryBuilder {
    /// An empty builder.
    pub fn new() -> QueryBuilder {
        QueryBuilder::default()
    }

    /// Number of nodes pushed so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node behind an id pushed earlier.
    pub fn node(&self, id: ExprId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The static type of a node pushed earlier.
    pub fn value_type(&self, id: ExprId) -> ValueType {
        self.types[id.index()]
    }

    /// The relevant-context set of a node pushed earlier.
    pub fn relev(&self, id: ExprId) -> Relev {
        self.relev[id.index()]
    }

    /// Adds `node` to the arena, computing its type and relevance from its
    /// children, and returns its id — the id of an existing structurally
    /// identical node where one was already pushed.
    pub fn push(&mut self, node: Node) -> ExprId {
        let key = intern_key(&node);
        if let Some(&id) = self.interned.get(&key) {
            return id;
        }
        let (ty, relev) = self.type_and_relev(&node);
        let id = ExprId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.types.push(ty);
        self.relev.push(relev);
        self.interned.insert(key, id);
        id
    }

    /// Finishes the arena into a [`Query`] with a fresh stamp.
    pub fn finish(self, root: ExprId) -> Query {
        assert!(root.index() < self.nodes.len(), "root {root} not pushed");
        Query {
            nodes: self.nodes,
            types: self.types,
            relev: self.relev,
            root,
            stamp: fresh_stamp(),
        }
    }

    /// Mirrors [`Lowerer`]'s typing/relevance rules over an already-built
    /// node (children referenced by id instead of recursed into).
    fn type_and_relev(&self, node: &Node) -> (ValueType, Relev) {
        let child = |id: ExprId| {
            debug_assert!(id.index() < self.nodes.len(), "child {id} not pushed");
            self.relev[id.index()]
        };
        match node {
            Node::Or(a, b) | Node::And(a, b) => (ValueType::Boolean, child(*a).union(child(*b))),
            Node::Compare(_, a, b) => (ValueType::Boolean, child(*a).union(child(*b))),
            Node::Arith(_, a, b) => (ValueType::Number, child(*a).union(child(*b))),
            Node::Neg(a) => (ValueType::Number, child(*a)),
            Node::Union(a, b) => (ValueType::NodeSet, child(*a).union(child(*b))),
            // Step and filter predicates get their own inner contexts; only
            // the start's relevance escapes (exactly as in lowering).
            Node::Path(PathStart::Root, _) => (ValueType::NodeSet, Relev::NONE),
            Node::Path(PathStart::Context, _) => (ValueType::NodeSet, Relev::NODE),
            Node::Path(PathStart::Filter { primary, .. }, _) => {
                (ValueType::NodeSet, child(*primary))
            }
            Node::Call(func, args) => {
                let mut r = func.own_relev();
                for &a in args {
                    r = r.union(child(a));
                }
                (func.result_type(), r)
            }
            Node::Number(_) => (ValueType::Number, Relev::NONE),
            Node::Literal(_) => (ValueType::String, Relev::NONE),
        }
    }
}

/// A canonical, injective structural encoding of a node: equal keys ⇔
/// structurally equal nodes.  Deliberately *not* the `Debug` form — the
/// interner's correctness must not hinge on derive output — with numbers
/// encoded by their IEEE bits (`-0.0 ≠ 0.0`) and all embedded strings
/// length-prefixed so no delimiter collision is possible.
fn intern_key(node: &Node) -> String {
    use std::fmt::Write;
    fn str_part(k: &mut String, s: &str) {
        write!(k, "{}:{s}", s.len()).expect("writing to String");
    }
    fn test_part(k: &mut String, t: &NodeTest) {
        match t {
            NodeTest::Wildcard => k.push('*'),
            NodeTest::Name(s) => {
                k.push('n');
                str_part(k, s);
            }
            NodeTest::Text => k.push('t'),
            NodeTest::Comment => k.push('c'),
            NodeTest::Pi(None) => k.push('p'),
            NodeTest::Pi(Some(s)) => {
                k.push('P');
                str_part(k, s);
            }
            NodeTest::AnyNode => k.push('N'),
        }
    }
    let mut k = String::new();
    match node {
        Node::Or(a, b) => write!(k, "or({a},{b})"),
        Node::And(a, b) => write!(k, "and({a},{b})"),
        Node::Compare(op, a, b) => write!(k, "cmp({op},{a},{b})"),
        Node::Arith(op, a, b) => write!(k, "ar({op},{a},{b})"),
        Node::Neg(a) => write!(k, "neg({a})"),
        Node::Union(a, b) => write!(k, "un({a},{b})"),
        Node::Number(n) => write!(k, "num({:016x})", n.to_bits()),
        Node::Literal(s) => {
            k.push_str("lit(");
            str_part(&mut k, s);
            write!(k, ")")
        }
        Node::Call(f, args) => {
            write!(k, "call({f}").expect("writing to String");
            for a in args {
                write!(k, ",{a}").expect("writing to String");
            }
            write!(k, ")")
        }
        Node::Path(start, steps) => {
            match start {
                PathStart::Root => k.push_str("path(/"),
                PathStart::Context => k.push_str("path(."),
                PathStart::Filter {
                    primary,
                    predicates,
                } => {
                    write!(k, "path(f{primary}").expect("writing to String");
                    for p in predicates {
                        write!(k, "[{p}]").expect("writing to String");
                    }
                }
            }
            for s in steps {
                write!(k, ";{}::", s.axis).expect("writing to String");
                test_part(&mut k, &s.test);
                for p in &s.predicates {
                    write!(k, "[{p}]").expect("writing to String");
                }
            }
            write!(k, ")")
        }
    }
    .expect("writing to String");
    k
}

struct Lowerer {
    nodes: Vec<Node>,
    types: Vec<ValueType>,
    relev: Vec<Relev>,
}

impl Lowerer {
    fn push(&mut self, node: Node, ty: ValueType, relev: Relev) -> ExprId {
        let id = ExprId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.types.push(ty);
        self.relev.push(relev);
        id
    }

    fn relev_of(&self, id: ExprId) -> Relev {
        self.relev[id.index()]
    }

    fn lower_expr(&mut self, expr: &AstExpr) -> ExprId {
        match expr {
            AstExpr::Or(a, b) => {
                let (a, b) = (self.lower_expr(a), self.lower_expr(b));
                let r = self.relev_of(a).union(self.relev_of(b));
                self.push(Node::Or(a, b), ValueType::Boolean, r)
            }
            AstExpr::And(a, b) => {
                let (a, b) = (self.lower_expr(a), self.lower_expr(b));
                let r = self.relev_of(a).union(self.relev_of(b));
                self.push(Node::And(a, b), ValueType::Boolean, r)
            }
            AstExpr::Compare(op, a, b) => {
                let (a, b) = (self.lower_expr(a), self.lower_expr(b));
                let r = self.relev_of(a).union(self.relev_of(b));
                self.push(Node::Compare(*op, a, b), ValueType::Boolean, r)
            }
            AstExpr::Arith(op, a, b) => {
                let (a, b) = (self.lower_expr(a), self.lower_expr(b));
                let r = self.relev_of(a).union(self.relev_of(b));
                self.push(Node::Arith(*op, a, b), ValueType::Number, r)
            }
            AstExpr::Neg(a) => {
                let a = self.lower_expr(a);
                let r = self.relev_of(a);
                self.push(Node::Neg(a), ValueType::Number, r)
            }
            AstExpr::Union(a, b) => {
                let (a, b) = (self.lower_expr(a), self.lower_expr(b));
                let r = self.relev_of(a).union(self.relev_of(b));
                self.push(Node::Union(a, b), ValueType::NodeSet, r)
            }
            AstExpr::Path(p) => self.lower_path(p),
            AstExpr::Filter {
                primary,
                predicates,
                steps,
            } => {
                let primary = self.lower_expr(primary);
                // Filter predicates and step predicates get their own inner
                // contexts; only the primary's relevance escapes.
                let r = self.relev_of(primary);
                let predicates = predicates.iter().map(|p| self.lower_expr(p)).collect();
                let steps = steps.iter().map(|s| self.lower_step(s)).collect();
                self.push(
                    Node::Path(
                        PathStart::Filter {
                            primary,
                            predicates,
                        },
                        steps,
                    ),
                    ValueType::NodeSet,
                    r,
                )
            }
            AstExpr::Call(name, args) => {
                let func = Func::from_name(name)
                    .unwrap_or_else(|| panic!("unknown function {name}() reached lowering"));
                let args: Vec<ExprId> = args.iter().map(|a| self.lower_expr(a)).collect();
                let mut r = func.own_relev();
                for &a in &args {
                    r = r.union(self.relev_of(a));
                }
                self.push(Node::Call(func, args), func.result_type(), r)
            }
            AstExpr::Var(v) => panic!("unbound variable ${v} reached lowering"),
            AstExpr::Number(n) => self.push(Node::Number(*n), ValueType::Number, Relev::NONE),
            AstExpr::Literal(s) => self.push(
                Node::Literal(s.as_str().into()),
                ValueType::String,
                Relev::NONE,
            ),
        }
    }

    fn lower_path(&mut self, p: &AstPath) -> ExprId {
        let steps: Vec<Step> = p.steps.iter().map(|s| self.lower_step(s)).collect();
        let (start, relev) = if p.absolute {
            // Absolute paths ignore the context entirely — this is what lets
            // the evaluators share one result per document.
            (PathStart::Root, Relev::NONE)
        } else {
            (PathStart::Context, Relev::NODE)
        };
        self.push(Node::Path(start, steps), ValueType::NodeSet, relev)
    }

    fn lower_step(&mut self, s: &AstStep) -> Step {
        Step {
            axis: s.axis,
            test: s.test.clone(),
            predicates: s.predicates.iter().map(|p| self.lower_expr(p)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_xpath;

    #[test]
    fn lowering_assigns_children_before_parents() {
        let q = parse_xpath("a[b = 1] | c").unwrap();
        // Root is the union and has the largest id.
        assert_eq!(q.root().index(), q.len() - 1);
        for (id, node) in q.iter() {
            let check = |c: ExprId| assert!(c < id, "child {c} not before parent {id}");
            match node {
                Node::Or(a, b)
                | Node::And(a, b)
                | Node::Compare(_, a, b)
                | Node::Arith(_, a, b)
                | Node::Union(a, b) => {
                    check(*a);
                    check(*b);
                }
                Node::Neg(a) => check(*a),
                Node::Call(_, args) => args.iter().copied().for_each(check),
                Node::Path(start, steps) => {
                    if let PathStart::Filter {
                        primary,
                        predicates,
                    } = start
                    {
                        check(*primary);
                        predicates.iter().copied().for_each(check);
                    }
                    for st in steps {
                        st.predicates.iter().copied().for_each(check);
                    }
                }
                Node::Number(_) | Node::Literal(_) => {}
            }
        }
    }

    #[test]
    fn root_is_path_for_paths_only() {
        assert!(parse_xpath("/a/b").unwrap().root_is_path());
        assert!(parse_xpath("a").unwrap().root_is_path());
        assert!(!parse_xpath("1 + 2").unwrap().root_is_path());
        assert!(!parse_xpath("a | b").unwrap().root_is_path());
        // A filter expression lowers to a Path with a Filter start.
        assert!(parse_xpath("id('x')[1]").unwrap().root_is_path());
    }

    #[test]
    fn relev_of_context_functions() {
        let q = parse_xpath("a[position() = last()]").unwrap();
        let mut saw_pos = false;
        let mut saw_last = false;
        let mut saw_cmp = false;
        for (id, node) in q.iter() {
            match node {
                Node::Call(Func::Position, _) => {
                    assert_eq!(q.relev(id), Relev::POSITION);
                    saw_pos = true;
                }
                Node::Call(Func::Last, _) => {
                    assert_eq!(q.relev(id), Relev::SIZE);
                    saw_last = true;
                }
                Node::Compare(..) => {
                    assert_eq!(q.relev(id), Relev::POSITION.union(Relev::SIZE));
                    assert!(!q.relev(id).node());
                    saw_cmp = true;
                }
                _ => {}
            }
        }
        assert!(saw_pos && saw_last && saw_cmp);
    }

    #[test]
    fn relev_of_paths() {
        // Absolute path: context-independent even with predicates.
        let q = parse_xpath("/a[b]").unwrap();
        assert_eq!(q.relev(q.root()), Relev::NONE);
        // Relative path: depends on the context node only.
        let q = parse_xpath("a[position() = 2]").unwrap();
        assert_eq!(q.relev(q.root()), Relev::NODE);
    }

    #[test]
    fn relev_arity_and_display() {
        let all = Relev::NODE.union(Relev::POSITION).union(Relev::SIZE);
        assert_eq!(all.arity(), 3);
        assert_eq!(all.to_string(), "{node, position, size}");
        assert_eq!(Relev::NONE.to_string(), "{}");
        assert_eq!(Relev::SIZE.to_string(), "{size}");
        assert!(all.contains(Relev::POSITION));
        assert!(!Relev::NODE.contains(Relev::SIZE));
    }

    #[test]
    fn value_types_are_static() {
        let q = parse_xpath("count(a) + 1").unwrap();
        assert_eq!(q.value_type(q.root()), ValueType::Number);
        let q = parse_xpath("'s'").unwrap();
        assert_eq!(q.value_type(q.root()), ValueType::String);
        let q = parse_xpath("a = b").unwrap();
        assert_eq!(q.value_type(q.root()), ValueType::Boolean);
        let q = parse_xpath("a | b").unwrap();
        assert_eq!(q.value_type(q.root()), ValueType::NodeSet);
    }

    #[test]
    fn func_round_trip() {
        for name in [
            "position",
            "last",
            "count",
            "id",
            "local-name",
            "namespace-uri",
            "name",
            "sum",
            "string",
            "concat",
            "starts-with",
            "contains",
            "substring-before",
            "substring-after",
            "substring",
            "string-length",
            "normalize-space",
            "translate",
            "boolean",
            "not",
            "true",
            "false",
            "lang",
            "number",
            "floor",
            "ceiling",
            "round",
        ] {
            let f = Func::from_name(name).unwrap();
            assert_eq!(f.as_str(), name);
        }
        assert_eq!(Func::from_name("nosuch"), None);
    }

    #[test]
    fn step_count_counts_all_paths() {
        let q = parse_xpath("/a/b[c/d]").unwrap();
        // Outer path has 2 steps; the predicate path has 2 more.
        assert_eq!(q.step_count(), 4);
    }

    #[test]
    fn builder_interns_structurally_identical_nodes() {
        let mut b = QueryBuilder::new();
        let one = b.push(Node::Number(1.0));
        let one_again = b.push(Node::Number(1.0));
        assert_eq!(one, one_again);
        // -0.0 must not intern onto 0.0: `1 div -0` and `1 div 0` differ.
        let zero = b.push(Node::Number(0.0));
        let neg_zero = b.push(Node::Number(-0.0));
        assert_ne!(zero, neg_zero);
        let cmp = b.push(Node::Compare(CmpOp::Eq, one, zero));
        let cmp_again = b.push(Node::Compare(CmpOp::Eq, one, zero));
        assert_eq!(cmp, cmp_again);
        assert_eq!(b.len(), 4);
        let q = b.finish(cmp);
        assert_eq!(q.len(), 4);
        assert_eq!(q.root(), cmp);
    }

    #[test]
    fn builder_typing_matches_lowering() {
        // Rebuild a lowered query node-for-node through the builder: every
        // node must come back with the same type and relevance.
        for src in [
            "/a[b]/c[position() = last()]",
            "count(//a[@id]) + sum(//n)",
            "(//a)[2] | //b[. = 'x']",
            "boolean(a | b) and lang('en')",
        ] {
            let q = parse_xpath(src).unwrap();
            let mut b = QueryBuilder::new();
            let mut map: Vec<ExprId> = Vec::with_capacity(q.len());
            for (id, node) in q.iter() {
                let remap = |old: ExprId| map[old.index()];
                let rebuilt = match node {
                    Node::Or(x, y) => Node::Or(remap(*x), remap(*y)),
                    Node::And(x, y) => Node::And(remap(*x), remap(*y)),
                    Node::Compare(op, x, y) => Node::Compare(*op, remap(*x), remap(*y)),
                    Node::Arith(op, x, y) => Node::Arith(*op, remap(*x), remap(*y)),
                    Node::Neg(x) => Node::Neg(remap(*x)),
                    Node::Union(x, y) => Node::Union(remap(*x), remap(*y)),
                    Node::Call(f, args) => Node::Call(*f, args.iter().map(|&a| remap(a)).collect()),
                    Node::Path(start, steps) => {
                        let start = match start {
                            PathStart::Root => PathStart::Root,
                            PathStart::Context => PathStart::Context,
                            PathStart::Filter {
                                primary,
                                predicates,
                            } => PathStart::Filter {
                                primary: remap(*primary),
                                predicates: predicates.iter().map(|&p| remap(p)).collect(),
                            },
                        };
                        let steps = steps
                            .iter()
                            .map(|s| Step {
                                axis: s.axis,
                                test: s.test.clone(),
                                predicates: s.predicates.iter().map(|&p| remap(p)).collect(),
                            })
                            .collect();
                        Node::Path(start, steps)
                    }
                    Node::Number(n) => Node::Number(*n),
                    Node::Literal(s) => Node::Literal(s.clone()),
                };
                let new_id = b.push(rebuilt);
                assert_eq!(b.value_type(new_id), q.value_type(id), "{src}: {id}");
                assert_eq!(b.relev(new_id), q.relev(id), "{src}: {id}");
                map.push(new_id);
            }
        }
    }
}

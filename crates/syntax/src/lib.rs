//! XPath 1.0 syntax: lexer, parser, normalizer, and the evaluation-ready
//! query representation for the `minctx` engine.
//!
//! The pipeline is
//!
//! ```text
//! &str ──lexer──▶ tokens ──parser──▶ AstExpr ──normalizer──▶ AstExpr (core form)
//!      ──lowering──▶ Query (arena parse tree with Relev / static types)
//! ```
//!
//! * [`lexer`] tokenizes per the XPath 1.0 grammar, including the
//!   special disambiguation rules of spec §3.7 (`*` as operator vs. node
//!   test, `and`/`or`/`div`/`mod` as operators vs. names).
//! * [`parser`] implements the full grammar (both abbreviated and
//!   unabbreviated syntax); abbreviations are expanded while parsing.
//! * [`normalize`] brings queries into the paper's assumed form
//!   (Section 2.2): all type conversions explicit, variables substituted by
//!   constants, number predicates rewritten to `position() = n`, zero-arg
//!   context functions expanded, `id(id(π))` rewritten to the id-"axis"
//!   (Section 4), and unions lifted out of existential contexts.
//! * [`query`] lowers the normalized AST to an arena [`query::Query`] whose
//!   [`query::ExprId`]s index the context-value tables of the evaluators,
//!   and computes the relevant-context sets `Relev(N)` of Section 3.1 and
//!   static result types.
//!
//! # Example
//!
//! ```
//! use minctx_syntax::parse_xpath;
//!
//! let q = parse_xpath("/descendant::*[position() > last()*0.5 or self::* = 100]").unwrap();
//! assert!(q.root_is_path());
//! ```

#![forbid(unsafe_code)]

pub mod ast;
pub mod lexer;
pub mod normalize;
pub mod parser;
pub mod query;

pub use ast::{ArithOp, AstExpr, AstPath, AstStep, CmpOp};
pub use lexer::{tokenize, Token, TokenKind};
pub use normalize::{normalize, Bindings};
pub use parser::{parse_expr, ParseError};
pub use query::{ExprId, Func, Node, PathStart, Query, QueryBuilder, Relev, Step, ValueType};

/// Parses, normalizes (with no variable bindings) and lowers an XPath 1.0
/// expression in one call.
pub fn parse_xpath(input: &str) -> Result<Query, ParseError> {
    parse_xpath_with_bindings(input, &Bindings::default())
}

/// Like [`parse_xpath`], with variable bindings substituted during
/// normalization (the paper assumes "each variable is replaced by the
/// (constant) value of the input variable binding", Section 2.2).
pub fn parse_xpath_with_bindings(input: &str, bindings: &Bindings) -> Result<Query, ParseError> {
    let ast = parse_expr(input)?;
    let normalized = normalize(ast, bindings)?;
    Ok(query::lower(&normalized))
}

//! Recursive-descent parser for the full XPath 1.0 grammar.
//!
//! Operator precedence follows the spec exactly:
//! `or` < `and` < `=`,`!=` < `<`,`<=`,`>`,`>=` < `+`,`-` <
//! `*`,`div`,`mod` < unary `-` < `|` < path.
//!
//! Abbreviations are expanded during parsing:
//! `//` → `/descendant-or-self::node()/`, `.` → `self::node()`,
//! `..` → `parent::node()`, `@n` → `attribute::n`, and a step with no axis
//! gets `child::`.

use crate::ast::{ArithOp, AstExpr, AstPath, AstStep, CmpOp};
use crate::lexer::{tokenize, LexError, Token, TokenKind};
use minctx_xml::axes::{Axis, NodeTest};
use std::fmt;

/// A parse (or lex) error with a byte offset into the query string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub message: String,
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XPath parse error: {} (at offset {})",
            self.message, self.offset
        )
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            offset: e.offset,
        }
    }
}

/// Parses an XPath 1.0 expression into an [`AstExpr`].
pub fn parse_expr(input: &str) -> Result<AstExpr, ParseError> {
    let tokens = tokenize(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        end_offset: input.len(),
    };
    let e = p.parse_or()?;
    if p.pos < p.tokens.len() {
        return Err(p.error_here("unexpected trailing tokens"));
    }
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    end_offset: usize,
}

impl Parser {
    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn peek2(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos + 1).map(|t| &t.kind)
    }

    fn bump(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| t.kind.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn offset_here(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|t| t.offset)
            .unwrap_or(self.end_offset)
    }

    fn error_here(&self, msg: &str) -> ParseError {
        let found = match self.peek() {
            Some(k) => format!("{msg}, found `{k}`"),
            None => format!("{msg}, found end of input"),
        };
        ParseError {
            message: found,
            offset: self.offset_here(),
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == Some(kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), ParseError> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.error_here(&format!("expected {what}")))
        }
    }

    // ---- expression levels -------------------------------------------

    fn parse_or(&mut self) -> Result<AstExpr, ParseError> {
        let mut left = self.parse_and()?;
        while self.eat(&TokenKind::Or) {
            let right = self.parse_and()?;
            left = AstExpr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<AstExpr, ParseError> {
        let mut left = self.parse_equality()?;
        while self.eat(&TokenKind::And) {
            let right = self.parse_equality()?;
            left = AstExpr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_equality(&mut self) -> Result<AstExpr, ParseError> {
        let mut left = self.parse_relational()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Eq) => CmpOp::Eq,
                Some(TokenKind::Neq) => CmpOp::Neq,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_relational()?;
            left = AstExpr::Compare(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_relational(&mut self) -> Result<AstExpr, ParseError> {
        let mut left = self.parse_additive()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Lt) => CmpOp::Lt,
                Some(TokenKind::Le) => CmpOp::Le,
                Some(TokenKind::Gt) => CmpOp::Gt,
                Some(TokenKind::Ge) => CmpOp::Ge,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_additive()?;
            left = AstExpr::Compare(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<AstExpr, ParseError> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Plus) => ArithOp::Add,
                Some(TokenKind::Minus) => ArithOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_multiplicative()?;
            left = AstExpr::Arith(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<AstExpr, ParseError> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Star) => ArithOp::Mul,
                Some(TokenKind::Div) => ArithOp::Div,
                Some(TokenKind::Mod) => ArithOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_unary()?;
            left = AstExpr::Arith(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<AstExpr, ParseError> {
        if self.eat(&TokenKind::Minus) {
            let e = self.parse_unary()?;
            Ok(AstExpr::Neg(Box::new(e)))
        } else {
            self.parse_union()
        }
    }

    fn parse_union(&mut self) -> Result<AstExpr, ParseError> {
        let mut left = self.parse_path_expr()?;
        while self.eat(&TokenKind::Pipe) {
            let right = self.parse_path_expr()?;
            left = AstExpr::Union(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    // ---- paths --------------------------------------------------------

    /// Whether the upcoming tokens start a *location path* rather than a
    /// primary expression (XPath 1.0 §3.7 rule 2: a Name followed by `(`
    /// is a function call unless the name is a node type).
    fn at_location_path(&self) -> bool {
        match self.peek() {
            Some(
                TokenKind::Slash
                | TokenKind::SlashSlash
                | TokenKind::Dot
                | TokenKind::DotDot
                | TokenKind::At
                | TokenKind::WildcardName
                | TokenKind::PrefixWildcard(_),
            ) => true,
            Some(TokenKind::Name(name)) => match self.peek2() {
                Some(TokenKind::LParen) => is_node_type(name),
                _ => true,
            },
            _ => false,
        }
    }

    fn parse_path_expr(&mut self) -> Result<AstExpr, ParseError> {
        if self.at_location_path() {
            return Ok(AstExpr::Path(self.parse_location_path()?));
        }
        // FilterExpr: PrimaryExpr Predicate* ('/' | '//' RelativePath)?
        let primary = self.parse_primary()?;
        let mut predicates = Vec::new();
        while self.peek() == Some(&TokenKind::LBracket) {
            predicates.push(self.parse_predicate()?);
        }
        let mut steps = Vec::new();
        loop {
            if self.eat(&TokenKind::SlashSlash) {
                steps.push(AstStep::simple(Axis::DescendantOrSelf, NodeTest::AnyNode));
                steps.push(self.parse_step()?);
            } else if self.eat(&TokenKind::Slash) {
                steps.push(self.parse_step()?);
            } else {
                break;
            }
        }
        if predicates.is_empty() && steps.is_empty() {
            Ok(primary)
        } else {
            Ok(AstExpr::Filter {
                primary: Box::new(primary),
                predicates,
                steps,
            })
        }
    }

    fn parse_location_path(&mut self) -> Result<AstPath, ParseError> {
        let mut steps = Vec::new();
        let absolute;
        if self.eat(&TokenKind::SlashSlash) {
            absolute = true;
            steps.push(AstStep::simple(Axis::DescendantOrSelf, NodeTest::AnyNode));
            steps.push(self.parse_step()?);
        } else if self.eat(&TokenKind::Slash) {
            absolute = true;
            // Bare `/` is a complete absolute path; a step follows only if
            // one can start here.
            if self.at_step_start() {
                steps.push(self.parse_step()?);
            } else {
                return Ok(AstPath { absolute, steps });
            }
        } else {
            absolute = false;
            steps.push(self.parse_step()?);
        }
        loop {
            if self.eat(&TokenKind::SlashSlash) {
                steps.push(AstStep::simple(Axis::DescendantOrSelf, NodeTest::AnyNode));
                steps.push(self.parse_step()?);
            } else if self.eat(&TokenKind::Slash) {
                steps.push(self.parse_step()?);
            } else {
                break;
            }
        }
        Ok(AstPath { absolute, steps })
    }

    fn at_step_start(&self) -> bool {
        matches!(
            self.peek(),
            Some(
                TokenKind::Dot
                    | TokenKind::DotDot
                    | TokenKind::At
                    | TokenKind::WildcardName
                    | TokenKind::PrefixWildcard(_)
                    | TokenKind::Name(_)
            )
        )
    }

    fn parse_step(&mut self) -> Result<AstStep, ParseError> {
        // Abbreviated steps.
        if self.eat(&TokenKind::Dot) {
            return Ok(AstStep::simple(Axis::SelfAxis, NodeTest::AnyNode));
        }
        if self.eat(&TokenKind::DotDot) {
            return Ok(AstStep::simple(Axis::Parent, NodeTest::AnyNode));
        }
        // Axis specifier.
        let axis = if self.eat(&TokenKind::At) {
            Axis::Attribute
        } else if let (Some(TokenKind::Name(name)), Some(TokenKind::ColonColon)) =
            (self.peek(), self.peek2())
        {
            let axis = Axis::from_str_opt(name).ok_or_else(|| ParseError {
                message: format!("unknown axis `{name}`"),
                offset: self.offset_here(),
            })?;
            self.pos += 2;
            axis
        } else {
            Axis::Child
        };
        // Node test.
        let test = self.parse_node_test()?;
        // Predicates.
        let mut predicates = Vec::new();
        while self.peek() == Some(&TokenKind::LBracket) {
            predicates.push(self.parse_predicate()?);
        }
        Ok(AstStep {
            axis,
            test,
            predicates,
        })
    }

    fn parse_node_test(&mut self) -> Result<NodeTest, ParseError> {
        match self.peek().cloned() {
            Some(TokenKind::WildcardName) => {
                self.pos += 1;
                Ok(NodeTest::Wildcard)
            }
            Some(TokenKind::PrefixWildcard(p)) => Err(ParseError {
                message: format!(
                    "namespace prefix wildcard `{p}:*` is not supported \
                     (namespaces are treated as plain names)"
                ),
                offset: self.offset_here(),
            }),
            Some(TokenKind::Name(name)) => {
                if self.peek2() == Some(&TokenKind::LParen) && is_node_type(&name) {
                    self.pos += 2; // name (
                    let test = match name.as_str() {
                        "text" => NodeTest::Text,
                        "comment" => NodeTest::Comment,
                        "node" => NodeTest::AnyNode,
                        "processing-instruction" => {
                            if let Some(TokenKind::Literal(target)) = self.peek().cloned() {
                                self.pos += 1;
                                NodeTest::Pi(Some(target.as_str().into()))
                            } else {
                                NodeTest::Pi(None)
                            }
                        }
                        _ => unreachable!("is_node_type checked"),
                    };
                    self.expect(&TokenKind::RParen, "`)` after node type test")?;
                    Ok(test)
                } else {
                    self.pos += 1;
                    Ok(NodeTest::name(&name))
                }
            }
            _ => Err(self.error_here("expected a node test")),
        }
    }

    fn parse_predicate(&mut self) -> Result<AstExpr, ParseError> {
        self.expect(&TokenKind::LBracket, "`[`")?;
        let e = self.parse_or()?;
        self.expect(&TokenKind::RBracket, "`]` after predicate")?;
        Ok(e)
    }

    // ---- primaries ------------------------------------------------------

    fn parse_primary(&mut self) -> Result<AstExpr, ParseError> {
        match self.bump() {
            Some(TokenKind::Variable(v)) => Ok(AstExpr::Var(v)),
            Some(TokenKind::Number(n)) => Ok(AstExpr::Number(n)),
            Some(TokenKind::Literal(s)) => Ok(AstExpr::Literal(s)),
            Some(TokenKind::LParen) => {
                let e = self.parse_or()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                Ok(e)
            }
            Some(TokenKind::Name(name)) => {
                // Must be a function call (location paths were diverted in
                // parse_path_expr).
                self.expect(&TokenKind::LParen, "`(` after function name")?;
                let mut args = Vec::new();
                if self.peek() != Some(&TokenKind::RParen) {
                    loop {
                        args.push(self.parse_or()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&TokenKind::RParen, "`)` after arguments")?;
                Ok(AstExpr::Call(name, args))
            }
            Some(other) => Err(ParseError {
                message: format!("expected an expression, found `{other}`"),
                offset: self.tokens[self.pos - 1].offset,
            }),
            None => Err(ParseError {
                message: "expected an expression, found end of input".to_string(),
                offset: self.end_offset,
            }),
        }
    }
}

fn is_node_type(name: &str) -> bool {
    matches!(name, "comment" | "text" | "processing-instruction" | "node")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(s: &str) -> AstExpr {
        parse_expr(s).unwrap_or_else(|e| panic!("parse {s:?}: {e}"))
    }

    /// Parse → display → parse must be a fixed point.
    fn round_trips(s: &str) {
        let e1 = parse_ok(s);
        let printed = e1.to_string();
        let e2 = parse_expr(&printed).unwrap_or_else(|err| panic!("reparse {printed:?}: {err}"));
        assert_eq!(e1, e2, "round trip of {s:?} via {printed:?}");
    }

    #[test]
    fn bare_root() {
        let e = parse_ok("/");
        match e {
            AstExpr::Path(p) => {
                assert!(p.absolute);
                assert!(p.steps.is_empty());
            }
            other => panic!("expected path, got {other:?}"),
        }
    }

    #[test]
    fn abbreviations_expand() {
        let e = parse_ok("//a/.././@b");
        let AstExpr::Path(p) = e else { panic!() };
        assert!(p.absolute);
        let rendered: Vec<String> = p.steps.iter().map(|s| s.to_string()).collect();
        assert_eq!(
            rendered,
            vec![
                "descendant-or-self::node()",
                "child::a",
                "parent::node()",
                "self::node()",
                "attribute::b",
            ]
        );
    }

    #[test]
    fn unabbreviated_axes() {
        for axis in [
            "self",
            "child",
            "parent",
            "descendant",
            "ancestor",
            "descendant-or-self",
            "ancestor-or-self",
            "following",
            "preceding",
            "following-sibling",
            "preceding-sibling",
            "attribute",
        ] {
            let q = format!("{axis}::*");
            let AstExpr::Path(p) = parse_ok(&q) else {
                panic!()
            };
            assert_eq!(p.steps[0].axis.as_str(), axis);
        }
        assert!(parse_expr("sideways::*").is_err());
    }

    #[test]
    fn node_tests() {
        let AstExpr::Path(p) = parse_ok(
            "child::text()/child::comment()/child::node()/child::processing-instruction('x')",
        ) else {
            panic!()
        };
        assert_eq!(p.steps[0].test, NodeTest::Text);
        assert_eq!(p.steps[1].test, NodeTest::Comment);
        assert_eq!(p.steps[2].test, NodeTest::AnyNode);
        assert_eq!(p.steps[3].test, NodeTest::Pi(Some("x".into())));
    }

    #[test]
    fn operator_precedence() {
        // or < and
        let e = parse_ok("1 or 2 and 3");
        assert!(matches!(e, AstExpr::Or(..)));
        // = < relational? No: equality is *lower* precedence than relational.
        let e = parse_ok("1 = 2 < 3");
        let AstExpr::Compare(CmpOp::Eq, _, r) = e else {
            panic!()
        };
        assert!(matches!(*r, AstExpr::Compare(CmpOp::Lt, ..)));
        // + < *
        let e = parse_ok("1 + 2 * 3");
        let AstExpr::Arith(ArithOp::Add, _, r) = e else {
            panic!()
        };
        assert!(matches!(*r, AstExpr::Arith(ArithOp::Mul, ..)));
        // unary minus binds tighter than *
        let e = parse_ok("-1 * 2");
        assert!(matches!(e, AstExpr::Arith(ArithOp::Mul, ..)));
        // double negation
        let e = parse_ok("--1");
        assert!(matches!(e, AstExpr::Neg(..)));
    }

    #[test]
    fn left_associativity() {
        let e = parse_ok("1 - 2 - 3");
        // ((1-2)-3)
        let AstExpr::Arith(ArithOp::Sub, l, _) = e else {
            panic!()
        };
        assert!(matches!(*l, AstExpr::Arith(ArithOp::Sub, ..)));
        let e = parse_ok("8 div 4 div 2");
        let AstExpr::Arith(ArithOp::Div, l, _) = e else {
            panic!()
        };
        assert!(matches!(*l, AstExpr::Arith(ArithOp::Div, ..)));
    }

    #[test]
    fn union_of_paths() {
        let e = parse_ok("a | b | c");
        let AstExpr::Union(l, _) = e else { panic!() };
        assert!(matches!(*l, AstExpr::Union(..)));
    }

    #[test]
    fn function_calls() {
        let e = parse_ok("concat('a', 'b', 'c')");
        let AstExpr::Call(name, args) = e else {
            panic!()
        };
        assert_eq!(name, "concat");
        assert_eq!(args.len(), 3);
        let e = parse_ok("true()");
        assert!(matches!(e, AstExpr::Call(n, a) if n == "true" && a.is_empty()));
    }

    #[test]
    fn filter_expressions() {
        let e = parse_ok("(//a)[1]");
        let AstExpr::Filter {
            predicates, steps, ..
        } = e
        else {
            panic!()
        };
        assert_eq!(predicates.len(), 1);
        assert!(steps.is_empty());

        let e = parse_ok("id('x')/child::b");
        let AstExpr::Filter { primary, steps, .. } = e else {
            panic!()
        };
        assert!(matches!(*primary, AstExpr::Call(..)));
        assert_eq!(steps.len(), 1);

        let e = parse_ok("id('x')//b");
        let AstExpr::Filter { steps, .. } = e else {
            panic!()
        };
        assert_eq!(steps.len(), 2); // descendant-or-self::node() + child::b
    }

    #[test]
    fn predicates_nest() {
        let e = parse_ok("a[b[c]]");
        let AstExpr::Path(p) = e else { panic!() };
        let AstExpr::Path(inner) = &p.steps[0].predicates[0] else {
            panic!()
        };
        assert_eq!(inner.steps[0].predicates.len(), 1);
    }

    #[test]
    fn multiple_predicates() {
        let AstExpr::Path(p) = parse_ok("a[1][2][last()]") else {
            panic!()
        };
        assert_eq!(p.steps[0].predicates.len(), 3);
    }

    #[test]
    fn paper_query_e_parses() {
        let e = parse_ok("/descendant::*/descendant::*[position() > last()*0.5 or self::* = 100]");
        let AstExpr::Path(p) = e else { panic!() };
        assert!(p.absolute);
        assert_eq!(p.steps.len(), 2);
        assert_eq!(p.steps[1].predicates.len(), 1);
        let AstExpr::Or(l, r) = &p.steps[1].predicates[0] else {
            panic!()
        };
        assert!(matches!(**l, AstExpr::Compare(CmpOp::Gt, ..)));
        assert!(matches!(**r, AstExpr::Compare(CmpOp::Eq, ..)));
    }

    #[test]
    fn paper_query_q_parses() {
        let e = parse_ok(
            "/child::a/descendant::*[boolean(following::d[(position() != last()) and \
             (preceding-sibling::*/preceding::* = 100)]/following::d)]",
        );
        let AstExpr::Path(p) = e else { panic!() };
        assert_eq!(p.steps.len(), 2);
    }

    #[test]
    fn errors_have_positions() {
        let err = parse_expr("a[").unwrap_err();
        assert_eq!(err.offset, 2);
        let err = parse_expr("f(1,)").unwrap_err();
        assert!(err.offset >= 4);
        assert!(parse_expr("").is_err());
        assert!(parse_expr("a b").is_err());
        assert!(parse_expr(")").is_err());
        assert!(parse_expr("child::").is_err());
        assert!(parse_expr("//").is_err());
    }

    #[test]
    fn prefix_wildcard_rejected_gracefully() {
        let err = parse_expr("child::ns:*").unwrap_err();
        assert!(err.message.contains("not supported"));
    }

    #[test]
    fn round_trip_corpus() {
        for q in [
            "/",
            "/child::a",
            "//a[@id='x']/b[1]",
            "count(//item) > 3 and not(false())",
            "a | b | c/d",
            "-(-3) + 4 * 5 div 6 mod 7",
            "string(/a/b) = 'x'",
            "(//a)[2]/following-sibling::*[position() < last()]",
            "id('k1 k2')/..",
            "/descendant::*/descendant::*[position() > last()*0.5 or self::* = 100]",
            "sum(//price) div count(//price)",
            "processing-instruction('tgt')/self::node()",
            "../preceding::comment()[2]",
            "'literal with \"quotes\"'",
            "ancestor-or-self::*[2][3]",
        ] {
            round_trips(q);
        }
    }

    #[test]
    fn div_as_element_name() {
        // `div` at the start of a path is a name, not an operator.
        let AstExpr::Path(p) = parse_ok("div/mod") else {
            panic!()
        };
        assert_eq!(p.steps.len(), 2);
        assert_eq!(p.steps[0].test, NodeTest::name("div"));
        assert_eq!(p.steps[1].test, NodeTest::name("mod"));
    }

    #[test]
    fn complex_mixed_expression() {
        round_trips(
            "boolean(/a/b[position() mod 2 = 0] | //c[contains(string(.), 'x')]) \
             or count(//d) >= 2",
        );
    }
}

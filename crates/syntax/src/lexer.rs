//! The XPath 1.0 lexer.
//!
//! Implements the token set of W3C XPath 1.0 §3.7 including the two
//! disambiguation rules:
//!
//! 1. If there is a preceding token and it is none of `@`, `::`, `(`, `[`,
//!    `,` or an operator, then `*` is the multiplication operator and an
//!    NCName must be `and`, `or`, `div` or `mod` (an operator name).
//! 2. If an NCName is followed by `(`, it is a function name or node-type
//!    test; if followed by `::`, it is an axis name.
//!
//! Rule 2 is resolved in the parser (which sees the following token); the
//! lexer resolves rule 1.

use std::fmt;

/// A lexed token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    /// Byte offset of the token start in the input.
    pub offset: usize,
}

/// XPath 1.0 token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    LParen,
    RParen,
    LBracket,
    RBracket,
    Dot,
    DotDot,
    At,
    Comma,
    ColonColon,
    /// A string literal, quotes removed.
    Literal(String),
    /// A number literal.
    Number(f64),
    /// `/`
    Slash,
    /// `//`
    SlashSlash,
    /// `|`
    Pipe,
    Plus,
    Minus,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    /// `*` when it is the multiplication operator (rule 1).
    Star,
    /// `and` / `or` / `div` / `mod` when they are operators (rule 1).
    And,
    Or,
    Div,
    Mod,
    /// A name (NCName or QName such as `ns:foo`); function / axis / node
    /// test roles are resolved by the parser.
    Name(String),
    /// `*` when it is a node test (wildcard).
    WildcardName,
    /// `ns:*` name-test form (prefix wildcard; treated as a plain prefix
    /// match extension).
    PrefixWildcard(String),
    /// `$qname`
    Variable(String),
}

impl TokenKind {
    /// Whether this token counts as an "operator" for disambiguation
    /// rule 1 of XPath 1.0 §3.7.
    fn is_operator_for_disambiguation(&self) -> bool {
        matches!(
            self,
            TokenKind::Slash
                | TokenKind::SlashSlash
                | TokenKind::Pipe
                | TokenKind::Plus
                | TokenKind::Minus
                | TokenKind::Eq
                | TokenKind::Neq
                | TokenKind::Lt
                | TokenKind::Le
                | TokenKind::Gt
                | TokenKind::Ge
                | TokenKind::Star
                | TokenKind::And
                | TokenKind::Or
                | TokenKind::Div
                | TokenKind::Mod
        )
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::LParen => f.write_str("("),
            TokenKind::RParen => f.write_str(")"),
            TokenKind::LBracket => f.write_str("["),
            TokenKind::RBracket => f.write_str("]"),
            TokenKind::Dot => f.write_str("."),
            TokenKind::DotDot => f.write_str(".."),
            TokenKind::At => f.write_str("@"),
            TokenKind::Comma => f.write_str(","),
            TokenKind::ColonColon => f.write_str("::"),
            TokenKind::Literal(s) => write!(f, "'{s}'"),
            TokenKind::Number(n) => write!(f, "{n}"),
            TokenKind::Slash => f.write_str("/"),
            TokenKind::SlashSlash => f.write_str("//"),
            TokenKind::Pipe => f.write_str("|"),
            TokenKind::Plus => f.write_str("+"),
            TokenKind::Minus => f.write_str("-"),
            TokenKind::Eq => f.write_str("="),
            TokenKind::Neq => f.write_str("!="),
            TokenKind::Lt => f.write_str("<"),
            TokenKind::Le => f.write_str("<="),
            TokenKind::Gt => f.write_str(">"),
            TokenKind::Ge => f.write_str(">="),
            TokenKind::Star => f.write_str("*"),
            TokenKind::And => f.write_str("and"),
            TokenKind::Or => f.write_str("or"),
            TokenKind::Div => f.write_str("div"),
            TokenKind::Mod => f.write_str("mod"),
            TokenKind::Name(s) => f.write_str(s),
            TokenKind::WildcardName => f.write_str("*"),
            TokenKind::PrefixWildcard(p) => write!(f, "{p}:*"),
            TokenKind::Variable(v) => write!(f, "${v}"),
        }
    }
}

/// A lexer error: an unexpected character or unterminated literal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    pub message: String,
    pub offset: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at offset {}", self.message, self.offset)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes an XPath 1.0 expression.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut tokens: Vec<Token> = Vec::new();
    let mut pos = 0usize;

    while pos < bytes.len() {
        let start = pos;
        let b = bytes[pos];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                pos += 1;
                continue;
            }
            b'(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    offset: start,
                });
                pos += 1;
            }
            b')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    offset: start,
                });
                pos += 1;
            }
            b'[' => {
                tokens.push(Token {
                    kind: TokenKind::LBracket,
                    offset: start,
                });
                pos += 1;
            }
            b']' => {
                tokens.push(Token {
                    kind: TokenKind::RBracket,
                    offset: start,
                });
                pos += 1;
            }
            b'@' => {
                tokens.push(Token {
                    kind: TokenKind::At,
                    offset: start,
                });
                pos += 1;
            }
            b',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    offset: start,
                });
                pos += 1;
            }
            b'|' => {
                tokens.push(Token {
                    kind: TokenKind::Pipe,
                    offset: start,
                });
                pos += 1;
            }
            b'+' => {
                tokens.push(Token {
                    kind: TokenKind::Plus,
                    offset: start,
                });
                pos += 1;
            }
            b'-' => {
                tokens.push(Token {
                    kind: TokenKind::Minus,
                    offset: start,
                });
                pos += 1;
            }
            b'=' => {
                tokens.push(Token {
                    kind: TokenKind::Eq,
                    offset: start,
                });
                pos += 1;
            }
            b'!' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Neq,
                        offset: start,
                    });
                    pos += 2;
                } else {
                    return Err(LexError {
                        message: "expected '=' after '!'".to_string(),
                        offset: start,
                    });
                }
            }
            b'<' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Le,
                        offset: start,
                    });
                    pos += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Lt,
                        offset: start,
                    });
                    pos += 1;
                }
            }
            b'>' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    tokens.push(Token {
                        kind: TokenKind::Ge,
                        offset: start,
                    });
                    pos += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Gt,
                        offset: start,
                    });
                    pos += 1;
                }
            }
            b'/' => {
                if bytes.get(pos + 1) == Some(&b'/') {
                    tokens.push(Token {
                        kind: TokenKind::SlashSlash,
                        offset: start,
                    });
                    pos += 2;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Slash,
                        offset: start,
                    });
                    pos += 1;
                }
            }
            b':' => {
                if bytes.get(pos + 1) == Some(&b':') {
                    tokens.push(Token {
                        kind: TokenKind::ColonColon,
                        offset: start,
                    });
                    pos += 2;
                } else {
                    return Err(LexError {
                        message: "unexpected ':'".to_string(),
                        offset: start,
                    });
                }
            }
            b'.' => {
                if bytes.get(pos + 1) == Some(&b'.') {
                    tokens.push(Token {
                        kind: TokenKind::DotDot,
                        offset: start,
                    });
                    pos += 2;
                } else if bytes.get(pos + 1).is_some_and(|c| c.is_ascii_digit()) {
                    let (num, next) = lex_number(input, pos)?;
                    tokens.push(Token {
                        kind: TokenKind::Number(num),
                        offset: start,
                    });
                    pos = next;
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Dot,
                        offset: start,
                    });
                    pos += 1;
                }
            }
            b'0'..=b'9' => {
                let (num, next) = lex_number(input, pos)?;
                tokens.push(Token {
                    kind: TokenKind::Number(num),
                    offset: start,
                });
                pos = next;
            }
            b'"' | b'\'' => {
                let quote = b as char;
                let rest = &input[pos + 1..];
                match rest.find(quote) {
                    Some(end) => {
                        tokens.push(Token {
                            kind: TokenKind::Literal(rest[..end].to_string()),
                            offset: start,
                        });
                        pos += 1 + end + 1;
                    }
                    None => {
                        return Err(LexError {
                            message: "unterminated string literal".to_string(),
                            offset: start,
                        })
                    }
                }
            }
            b'$' => {
                let name_start = pos + 1;
                let end = scan_name(input, name_start).ok_or_else(|| LexError {
                    message: "expected variable name after '$'".to_string(),
                    offset: start,
                })?;
                tokens.push(Token {
                    kind: TokenKind::Variable(input[name_start..end].to_string()),
                    offset: start,
                });
                pos = end;
            }
            b'*' => {
                let kind = if must_be_operator(&tokens) {
                    TokenKind::Star
                } else {
                    TokenKind::WildcardName
                };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
                pos += 1;
            }
            _ => {
                let end = scan_name(input, pos).ok_or_else(|| LexError {
                    message: format!(
                        "unexpected character {:?}",
                        input[pos..].chars().next().expect("in bounds")
                    ),
                    offset: start,
                })?;
                let name = &input[pos..end];
                // `ns:*` prefix wildcard.
                if bytes.get(end) == Some(&b':')
                    && bytes.get(end + 1) == Some(&b'*')
                    && bytes.get(end + 1 + 1) != Some(&b':')
                {
                    tokens.push(Token {
                        kind: TokenKind::PrefixWildcard(name.to_string()),
                        offset: start,
                    });
                    pos = end + 2;
                    continue;
                }
                let kind = if must_be_operator(&tokens) {
                    match name {
                        "and" => TokenKind::And,
                        "or" => TokenKind::Or,
                        "div" => TokenKind::Div,
                        "mod" => TokenKind::Mod,
                        other => {
                            return Err(LexError {
                                message: format!("expected an operator, found name {other:?}"),
                                offset: start,
                            })
                        }
                    }
                } else {
                    TokenKind::Name(name.to_string())
                };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
                pos = end;
            }
        }
    }
    Ok(tokens)
}

/// Disambiguation rule 1: with a preceding token that is not `@`, `::`,
/// `(`, `[`, `,` or an operator, `*` and the operator names are operators.
fn must_be_operator(tokens: &[Token]) -> bool {
    match tokens.last() {
        None => false,
        Some(t) => {
            !matches!(
                t.kind,
                TokenKind::At
                    | TokenKind::ColonColon
                    | TokenKind::LParen
                    | TokenKind::LBracket
                    | TokenKind::Comma
            ) && !t.kind.is_operator_for_disambiguation()
        }
    }
}

/// Lexes `Digits ('.' Digits?)? | '.' Digits` starting at `pos`.
fn lex_number(input: &str, pos: usize) -> Result<(f64, usize), LexError> {
    let bytes = input.as_bytes();
    let mut end = pos;
    while end < bytes.len() && bytes[end].is_ascii_digit() {
        end += 1;
    }
    if end < bytes.len() && bytes[end] == b'.' {
        // Don't consume `..` (as in `1..`) — only a decimal point.
        if bytes.get(end + 1) != Some(&b'.') {
            end += 1;
            while end < bytes.len() && bytes[end].is_ascii_digit() {
                end += 1;
            }
        }
    }
    let text = &input[pos..end];
    text.parse::<f64>().map(|n| (n, end)).map_err(|_| LexError {
        message: format!("invalid number {text:?}"),
        offset: pos,
    })
}

/// Scans a QName (`NCName (':' NCName)?`) starting at `pos`; returns the
/// end offset, or `None` if no name starts here.
fn scan_name(input: &str, pos: usize) -> Option<usize> {
    let rest = &input[pos..];
    let mut chars = rest.char_indices().peekable();
    match chars.peek() {
        Some(&(_, c)) if is_name_start(c) => {
            chars.next();
        }
        _ => return None,
    }
    let mut end = rest.len();
    let mut colon_seen = false;
    while let Some(&(i, c)) = chars.peek() {
        if c == ':' {
            // A single colon may join two NCNames into a QName; `::` stops
            // the name (axis separator).
            let after = rest[i + 1..].chars().next();
            if colon_seen || !after.is_some_and(is_name_start) {
                end = i;
                break;
            }
            colon_seen = true;
            chars.next();
        } else if is_name_char(c) {
            chars.next();
        } else {
            end = i;
            break;
        }
    }
    Some(pos + end)
}

fn is_name_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_name_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | '\u{b7}')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn simple_path() {
        assert_eq!(
            kinds("/child::a/b"),
            vec![
                TokenKind::Slash,
                TokenKind::Name("child".into()),
                TokenKind::ColonColon,
                TokenKind::Name("a".into()),
                TokenKind::Slash,
                TokenKind::Name("b".into()),
            ]
        );
    }

    #[test]
    fn star_disambiguation() {
        // After `::` it's a wildcard; after a name it's multiplication.
        assert_eq!(
            kinds("child::* * 2"),
            vec![
                TokenKind::Name("child".into()),
                TokenKind::ColonColon,
                TokenKind::WildcardName,
                TokenKind::Star,
                TokenKind::Number(2.0),
            ]
        );
        // At expression start it's a wildcard.
        assert_eq!(kinds("*")[0], TokenKind::WildcardName);
        // After `(`, `[`, `,`, an operator: wildcard.
        assert_eq!(kinds("(*")[1], TokenKind::WildcardName);
        assert_eq!(kinds("[*")[1], TokenKind::WildcardName);
        assert_eq!(kinds("4 + *")[2], TokenKind::WildcardName);
        // After `)` or a literal or number: operator.
        assert_eq!(kinds("(a) * 2")[3], TokenKind::Star);
        assert_eq!(kinds("5 * 2")[1], TokenKind::Star);
    }

    #[test]
    fn operator_names_disambiguation() {
        assert_eq!(
            kinds("a and b or c"),
            vec![
                TokenKind::Name("a".into()),
                TokenKind::And,
                TokenKind::Name("b".into()),
                TokenKind::Or,
                TokenKind::Name("c".into()),
            ]
        );
        // `div` as an element name at path start.
        assert_eq!(kinds("div")[0], TokenKind::Name("div".into()));
        // `div div div` = path-name, operator, name.
        assert_eq!(
            kinds("div div div"),
            vec![
                TokenKind::Name("div".into()),
                TokenKind::Div,
                TokenKind::Name("div".into()),
            ]
        );
        // After `/` (an operator token), a name is a name again.
        assert_eq!(kinds("a/or")[2], TokenKind::Name("or".into()));
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("1.5"), vec![TokenKind::Number(1.5)]);
        assert_eq!(kinds(".5"), vec![TokenKind::Number(0.5)]);
        assert_eq!(kinds("5."), vec![TokenKind::Number(5.0)]);
        assert_eq!(kinds("42"), vec![TokenKind::Number(42.0)]);
        assert_eq!(
            kinds("1+2"),
            vec![
                TokenKind::Number(1.0),
                TokenKind::Plus,
                TokenKind::Number(2.0)
            ]
        );
    }

    #[test]
    fn literals() {
        assert_eq!(kinds("'abc'"), vec![TokenKind::Literal("abc".into())]);
        assert_eq!(kinds("\"x'y\""), vec![TokenKind::Literal("x'y".into())]);
        assert!(tokenize("'unterminated").is_err());
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("a != b <= c >= d < e > f = g"),
            vec![
                TokenKind::Name("a".into()),
                TokenKind::Neq,
                TokenKind::Name("b".into()),
                TokenKind::Le,
                TokenKind::Name("c".into()),
                TokenKind::Ge,
                TokenKind::Name("d".into()),
                TokenKind::Lt,
                TokenKind::Name("e".into()),
                TokenKind::Gt,
                TokenKind::Name("f".into()),
                TokenKind::Eq,
                TokenKind::Name("g".into()),
            ]
        );
    }

    #[test]
    fn dots_and_slashes() {
        assert_eq!(
            kinds(".//..//."),
            vec![
                TokenKind::Dot,
                TokenKind::SlashSlash,
                TokenKind::DotDot,
                TokenKind::SlashSlash,
                TokenKind::Dot,
            ]
        );
    }

    #[test]
    fn variables() {
        assert_eq!(kinds("$x + $ns:y")[0], TokenKind::Variable("x".into()));
        assert_eq!(kinds("$ns:y")[0], TokenKind::Variable("ns:y".into()));
        assert!(tokenize("$ ").is_err());
    }

    #[test]
    fn qnames_and_prefix_wildcards() {
        assert_eq!(kinds("ns:foo")[0], TokenKind::Name("ns:foo".into()));
        assert_eq!(kinds("ns:*")[0], TokenKind::PrefixWildcard("ns".into()));
        // `a:b::c` lexes the QName a:b then `::`.
        assert_eq!(
            kinds("ancestor-or-self::node()")[0],
            TokenKind::Name("ancestor-or-self".into())
        );
    }

    #[test]
    fn axis_with_double_colon() {
        assert_eq!(
            kinds("self::a")[..3],
            [
                TokenKind::Name("self".into()),
                TokenKind::ColonColon,
                TokenKind::Name("a".into()),
            ]
        );
    }

    #[test]
    fn bad_characters() {
        assert!(tokenize("a ! b").is_err());
        assert!(tokenize("#").is_err());
        assert!(tokenize("a : b").is_err());
    }

    #[test]
    fn paper_query_lexes() {
        let q = "/descendant::*/descendant::*[position() > last()*0.5 or self::* = 100]";
        let toks = tokenize(q).unwrap();
        assert!(toks.len() > 15);
        // `*` after `last()` must be multiplication, after `::` a wildcard.
        let star_count = toks.iter().filter(|t| t.kind == TokenKind::Star).count();
        assert_eq!(star_count, 1);
        let wild_count = toks
            .iter()
            .filter(|t| t.kind == TokenKind::WildcardName)
            .count();
        assert_eq!(wild_count, 3);
    }

    #[test]
    fn whitespace_is_insignificant() {
        assert_eq!(kinds(" a \n/\t b "), kinds("a/b"));
    }

    #[test]
    fn offsets_are_recorded() {
        let toks = tokenize("a + b").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 2);
        assert_eq!(toks[2].offset, 4);
    }
}

//! Seeded stress test: [`Queue::close`] racing `push` from N producers
//! (satellite to the protocol models — this one runs real threads and
//! the real condvar path, at scales the exhaustive checkers cannot).
//!
//! Every producer records, per item, whether its push was **accepted**
//! (the queue owes delivery) or **rejected** (`Closed` handed the item
//! back — the producer keeps it).  After the dust settles, conservation
//! must hold exactly: items delivered to consumers ∪ items handed back
//! = items pushed, with no overlap, no loss, and no duplicates — no
//! matter where the asynchronous `close` landed relative to each push.
//!
//! The schedule is perturbed by a seeded xorshift RNG (spin-jitter and
//! a randomized close point), so failures reproduce by seed.  Under
//! Miri the iteration counts drop to keep the run tractable.

use minctx_serve::{PushError, Queue, TryPop};
use std::collections::BTreeSet;
use std::sync::Arc;
use std::thread;

/// Tiny deterministic xorshift64* — the workspace vendors nothing, so
/// no rand crate; reproducibility by seed is all that matters here.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> XorShift {
        XorShift(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// Burns a few cycles to perturb thread timing without sleeping.
fn jitter(rng: &mut XorShift, max_spins: u32) {
    let spins = (rng.next() % u64::from(max_spins.max(1))) as u32;
    for _ in 0..spins {
        std::hint::spin_loop();
    }
}

const PRODUCERS: u32 = 8;
#[cfg(not(miri))]
const ITEMS_PER_PRODUCER: u32 = 500;
#[cfg(miri)]
const ITEMS_PER_PRODUCER: u32 = 8;

/// One full race: producers push, a closer slams the door at a seeded
/// moment, consumers drain.  Returns (accepted, rejected, delivered).
fn run_race(seed: u64) -> (BTreeSet<u32>, BTreeSet<u32>, Vec<u32>) {
    let q = Arc::new(Queue::<u32>::new());

    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut rng = XorShift::new(seed ^ (0xbabe << 8) ^ u64::from(p));
                let mut accepted = BTreeSet::new();
                let mut rejected = BTreeSet::new();
                for i in 0..ITEMS_PER_PRODUCER {
                    let item = p * ITEMS_PER_PRODUCER + i;
                    jitter(&mut rng, 64);
                    match q.push(item) {
                        Ok(_) => {
                            accepted.insert(item);
                        }
                        Err(PushError::Closed(back)) => {
                            assert_eq!(back, item, "Closed must hand the item back");
                            rejected.insert(item);
                        }
                        Err(PushError::Full { .. }) => {
                            unreachable!("unbounded queue can never be Full")
                        }
                    }
                }
                (accepted, rejected)
            })
        })
        .collect();

    // The racing close: land it somewhere inside the producers' run.
    let closer = {
        let q = Arc::clone(&q);
        thread::spawn(move || {
            let mut rng = XorShift::new(seed ^ 0xc105_e0ff);
            jitter(&mut rng, 4096);
            q.close();
        })
    };

    // Consumers use blocking `pop`, exercising the condvar wakeup on
    // close — the one path the offline protocol model cannot reach.
    let consumers: Vec<_> = (0..4)
        .map(|_| {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(item) = q.pop() {
                    got.push(item);
                }
                got
            })
        })
        .collect();

    let mut accepted = BTreeSet::new();
    let mut rejected = BTreeSet::new();
    for h in producers {
        let (a, r) = h.join().unwrap();
        accepted.extend(a);
        rejected.extend(r);
    }
    closer.join().unwrap();
    let delivered: Vec<u32> = consumers
        .into_iter()
        .flat_map(|c| c.join().unwrap())
        .collect();
    // Everything left after the consumers saw `None` would be lost.
    assert!(matches!(q.try_pop(), TryPop::Closed));
    (accepted, rejected, delivered)
}

#[test]
fn close_racing_pushes_conserves_every_item() {
    #[cfg(not(miri))]
    const SEEDS: std::ops::Range<u64> = 0..16;
    #[cfg(miri)]
    const SEEDS: std::ops::Range<u64> = 0..2;

    for seed in SEEDS {
        let (accepted, rejected, delivered) = run_race(seed);

        let total = PRODUCERS * ITEMS_PER_PRODUCER;
        assert_eq!(
            accepted.len() + rejected.len(),
            total as usize,
            "seed {seed}: every push must be accepted xor rejected"
        );
        assert!(
            accepted.is_disjoint(&rejected),
            "seed {seed}: an item cannot be both accepted and rejected"
        );

        let mut seen = BTreeSet::new();
        for &item in &delivered {
            assert!(
                seen.insert(item),
                "seed {seed}: item {item} delivered twice"
            );
        }
        assert_eq!(
            seen,
            accepted,
            "seed {seed}: accepted and delivered sets must match exactly \
             (lost: {:?}, conjured: {:?})",
            accepted.difference(&seen).collect::<Vec<_>>(),
            seen.difference(&accepted).collect::<Vec<_>>()
        );
        assert!(
            seen.is_disjoint(&rejected),
            "seed {seed}: a rejected item must never be delivered"
        );
    }
}

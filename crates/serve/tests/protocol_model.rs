//! Exhaustive offline interleaving checker for the serve protocols.
//!
//! `tests/loom.rs` needs the loom crate, which the offline workspace
//! deliberately does not vendor — so this test re-proves the same
//! invariants with nothing but std, by brute force.  The key soundness
//! observation: every [`Queue`] transition (`push`, `try_pop`, `close`)
//! runs entirely inside one critical section of the queue's single
//! mutex, and every [`LiveCount`] transition is a single `SeqCst` RMW.
//! Real threads can therefore only produce behaviors equal to *some
//! sequential interleaving of those atomic steps* — so enumerating
//! every interleaving of small per-thread programs and replaying each
//! one against the **real** `Queue`/`LiveCount` code (fresh state per
//! schedule) covers everything the scheduler could do, minus only the
//! condvar wakeup paths (which `tests/loom.rs` and the seeded stress
//! test in `tests/queue_stress.rs` cover).
//!
//! Checked here, across *every* schedule:
//!
//! * no job is lost, none is delivered twice, and `TryPop::Closed` is
//!   only ever observed on a closed-and-drained queue;
//! * a bounded queue rejects with `Full` only while genuinely at
//!   capacity, and a `Full`-rejected item is never later delivered;
//! * the live-worker count never transiently dips during a respawn
//!   handoff — and the checker has teeth: the buggy retire-first
//!   ordering is shown to be caught.

use minctx_serve::{LiveCount, PushError, Queue, TryPop};
use std::collections::BTreeSet;

/// Drives `explore` over every interleaving of threads with the given
/// program lengths: each schedule is a sequence of thread indices in
/// which thread `t` appears exactly `lens[t]` times, preserving each
/// thread's program order.  Returns the number of schedules visited.
fn for_each_schedule(lens: &[usize], mut explore: impl FnMut(&[usize])) -> usize {
    fn rec(
        lens: &[usize],
        done: &mut [usize],
        schedule: &mut Vec<usize>,
        count: &mut usize,
        explore: &mut impl FnMut(&[usize]),
    ) {
        if schedule.len() == lens.iter().sum() {
            *count += 1;
            explore(schedule);
            return;
        }
        for t in 0..lens.len() {
            if done[t] < lens[t] {
                done[t] += 1;
                schedule.push(t);
                rec(lens, done, schedule, count, explore);
                schedule.pop();
                done[t] -= 1;
            }
        }
    }
    let mut count = 0;
    rec(
        lens,
        &mut vec![0; lens.len()],
        &mut Vec::new(),
        &mut count,
        &mut explore,
    );
    count
}

#[test]
fn schedule_enumeration_is_exhaustive() {
    // Sanity-check the enumerator itself: merges of (2, 2) = C(4, 2).
    assert_eq!(for_each_schedule(&[2, 2], |_| {}), 6);
    // Multinomial 6! / (2! 2! 2!).
    assert_eq!(for_each_schedule(&[2, 2, 2], |_| {}), 90);
}

/// One atomic step of a queue-model thread.
#[derive(Clone, Copy)]
enum Op {
    Push(u32),
    TryPop,
    Close,
}

/// Replays `programs` under `schedule` against a fresh real queue and
/// checks the delivery invariants; returns what was delivered in-order.
fn replay_queue(capacity: usize, programs: &[Vec<Op>], schedule: &[usize]) -> Vec<u32> {
    let q = Queue::bounded(capacity);
    let mut pc = vec![0usize; programs.len()];
    let mut accepted = BTreeSet::new();
    let mut rejected_full = BTreeSet::new();
    let mut delivered = Vec::new();
    let mut closed = false;
    for &t in schedule {
        let op = programs[t][pc[t]];
        pc[t] += 1;
        match op {
            Op::Push(item) => match q.push(item) {
                Ok(depth) => {
                    assert!(depth <= capacity, "depth {depth} exceeds capacity");
                    assert!(!closed, "push accepted after close");
                    accepted.insert(item);
                }
                Err(PushError::Closed(back)) => {
                    assert_eq!(back, item, "rejected item must come back intact");
                    assert!(closed, "Closed rejection before close ran");
                }
                Err(PushError::Full { item: back, .. }) => {
                    assert_eq!(back, item, "rejected item must come back intact");
                    assert_eq!(
                        q.len(),
                        capacity,
                        "Full rejection while not actually at capacity"
                    );
                    rejected_full.insert(item);
                }
            },
            Op::TryPop => match q.try_pop() {
                TryPop::Item(item) => {
                    assert!(
                        accepted.contains(&item),
                        "delivered an item that was never accepted"
                    );
                    delivered.push(item);
                }
                TryPop::Closed => {
                    assert!(closed, "observed Closed before close ran");
                    assert!(q.is_empty(), "Closed observed with items still queued");
                }
                TryPop::Empty => {}
            },
            Op::Close => {
                q.close();
                closed = true;
            }
        }
    }
    // Conservation: every accepted item is delivered exactly once or
    // still queued — never lost, never duplicated, and never both.
    let mut seen = BTreeSet::new();
    for &item in &delivered {
        assert!(seen.insert(item), "item {item} delivered twice");
    }
    let mut remaining = BTreeSet::new();
    while let TryPop::Item(item) = q.try_pop() {
        assert!(remaining.insert(item), "item {item} queued twice");
    }
    assert!(
        seen.is_disjoint(&remaining),
        "item both delivered and still queued"
    );
    let all: BTreeSet<u32> = seen.union(&remaining).copied().collect();
    assert_eq!(all, accepted, "accepted items must be conserved exactly");
    assert!(
        rejected_full.is_disjoint(&all),
        "a Full-rejected item must never surface"
    );
    delivered
}

#[test]
fn unbounded_queue_conserves_jobs_under_every_interleaving() {
    // Two producers (two pushes each), one closer, one consumer polling
    // five times: 10!/(2!·2!·1!·5!) = 7560 schedules.
    let programs = vec![
        vec![Op::Push(0), Op::Push(1)],
        vec![Op::Push(10), Op::Push(11)],
        vec![Op::Close],
        vec![Op::TryPop; 5],
    ];
    let lens: Vec<usize> = programs.iter().map(Vec::len).collect();
    let n = for_each_schedule(&lens, |s| {
        replay_queue(usize::MAX, &programs, s);
    });
    assert_eq!(n, 7560);
}

#[test]
fn two_consumers_never_double_deliver_under_every_interleaving() {
    let programs = vec![
        vec![Op::Push(0), Op::Push(1), Op::Close],
        vec![Op::TryPop; 3],
        vec![Op::TryPop; 3],
    ];
    let lens: Vec<usize> = programs.iter().map(Vec::len).collect();
    for_each_schedule(&lens, |s| {
        // `replay_queue` itself asserts no double delivery; FIFO across
        // a single consumer is additionally order-checked below.
        replay_queue(usize::MAX, &programs, s);
    });
}

#[test]
fn queue_is_fifo_for_a_single_consumer() {
    // One producer, one consumer: whatever the interleaving, items
    // arrive in push order (possibly truncated, never reordered).
    let programs = vec![
        vec![Op::Push(0), Op::Push(1), Op::Push(2)],
        vec![Op::TryPop; 4],
    ];
    let lens: Vec<usize> = programs.iter().map(Vec::len).collect();
    for_each_schedule(&lens, |s| {
        let delivered = replay_queue(usize::MAX, &programs, s);
        assert!(
            delivered.iter().zip(0u32..).all(|(&got, want)| got == want),
            "single consumer saw out-of-order delivery: {delivered:?}"
        );
    });
}

#[test]
fn bounded_queue_full_rejections_are_exact_under_every_interleaving() {
    // Capacity 1, three racing pushers, a consumer making room in
    // between: Full may hit any pusher, but only while truly full, and
    // rejected items never surface (both asserted inside the replay).
    let programs = vec![
        vec![Op::Push(0)],
        vec![Op::Push(1)],
        vec![Op::Push(2)],
        vec![Op::TryPop; 2],
        vec![Op::Close],
    ];
    let lens: Vec<usize> = programs.iter().map(Vec::len).collect();
    for_each_schedule(&lens, |s| {
        replay_queue(1, &programs, s);
    });
}

/// One atomic step of the live-count respawn protocol.
#[derive(Clone, Copy)]
enum LiveOp {
    /// The replacement-adopt half of a handoff.
    Adopt,
    /// The dying worker's own retire.
    Retire,
    /// An observer samples the count.
    Observe,
}

/// Replays a handoff ordering against the real [`LiveCount`] and
/// returns the minimum count any observer sampled.
fn replay_live(programs: &[Vec<LiveOp>], schedule: &[usize]) -> usize {
    let live = LiveCount::new();
    live.adopt(); // the steady worker
    live.adopt(); // the worker about to die and be replaced
    let mut pc = vec![0usize; programs.len()];
    let mut min_seen = usize::MAX;
    for &t in schedule {
        let op = programs[t][pc[t]];
        pc[t] += 1;
        match op {
            LiveOp::Adopt => live.adopt(),
            LiveOp::Retire => live.retire(),
            LiveOp::Observe => min_seen = min_seen.min(live.get()),
        }
    }
    assert_eq!(live.get(), 2, "handoff must preserve the pool size");
    min_seen
}

#[test]
fn live_count_never_dips_with_replacement_first_handoff() {
    // The real protocol ([`LiveCount::handoff`]): adopt the replacement
    // strictly before retiring.  Two observers sample at arbitrary
    // points; in no interleaving may either see fewer than 2.
    let programs = vec![
        vec![LiveOp::Adopt, LiveOp::Retire],
        vec![LiveOp::Observe; 2],
        vec![LiveOp::Observe; 2],
    ];
    let lens: Vec<usize> = programs.iter().map(Vec::len).collect();
    for_each_schedule(&lens, |s| {
        let min_seen = replay_live(&programs, s);
        assert!(
            min_seen >= 2,
            "live count dipped to {min_seen} during a replacement-first handoff"
        );
    });
}

#[test]
fn retire_first_handoff_would_dip_and_the_checker_catches_it() {
    // Negative control: the tempting-but-wrong ordering (retire, then
    // adopt the replacement) must produce at least one schedule where
    // an observer catches the pool at 1 — proving this checker would
    // have flagged the bug had `handoff` been written that way.
    let programs = vec![
        vec![LiveOp::Retire, LiveOp::Adopt],
        vec![LiveOp::Observe; 2],
    ];
    let lens: Vec<usize> = programs.iter().map(Vec::len).collect();
    let mut dip_found = false;
    for_each_schedule(&lens, |s| {
        if replay_live(&programs, s) < 2 {
            dip_found = true;
        }
    });
    assert!(
        dip_found,
        "the checker failed to expose the retire-first dip"
    );
}

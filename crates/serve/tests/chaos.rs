//! Seeded fault-injection suite for the worker pool.  Each test
//! installs a [`ChaosPlan`] that fires panics at one isolation boundary
//! (contained evaluation panic, worker-killing panic, panic under a
//! shard lock) and asserts the four invariants the serving layer
//! claims:
//!
//! 1. **No hang** — every ticket resolves within a generous timeout.
//! 2. **No wrong answer** — every `Ok` is bit-identical to the
//!    fault-free sequential evaluation of the same query.
//! 3. **No leaked worker** — `live_workers()` equals the configured
//!    pool size once the dust settles, and shutdown leaves zero.
//! 4. **Service survives** — after `chaos::clear()` the same pool
//!    answers everything correctly.
//!
//! The chaos plan is process-global, so these tests serialize on a
//! local mutex; the suite lives in its own integration binary to keep
//! chaos away from the ordinary concurrency tests.

use minctx_bench::{corpus, values_agree};
use minctx_core::{Budget, Engine, EvalError, Strategy, Value};
use minctx_serve::{chaos, ChaosPlan, Corpus, RetryPolicy, ServeEngine, ServeError};
use minctx_xml::Document;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Serializes chaos tests: the plan is process-global state.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn chaos_guard() -> MutexGuard<'static, ()> {
    match CHAOS_LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Clears the plan even when an assertion unwinds out of a test.
struct ClearOnDrop;
impl Drop for ClearOnDrop {
    fn drop(&mut self) {
        chaos::clear();
    }
}

const RESOLVE_WITHIN: Duration = Duration::from_secs(30);

/// A dying worker resolves its ticket (the job drops during unwind)
/// *before* its respawn sentry finishes the hand-off bookkeeping, so
/// `live_workers`/`worker_respawns` may lag ticket resolution by a
/// moment.  Spin until the pool settles; panic rather than hang.
fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + RESOLVE_WITHIN;
    while !cond() {
        assert!(Instant::now() < deadline, "pool never settled: {what}");
        std::thread::yield_now();
    }
}

fn test_doc() -> Arc<Document> {
    let (_, doc) = corpus::documents().remove(0);
    Arc::new(doc)
}

/// Fault-free ground truth for the full query corpus against `doc`.
fn expected_answers(doc: &Document) -> Vec<Result<Value, EvalError>> {
    let engine = Engine::new(Strategy::OptMinContext);
    corpus::QUERIES
        .iter()
        .map(|q| engine.evaluate_str(doc, q))
        .collect()
}

/// Submits `rounds` replays of the query corpus, waits for every ticket
/// with a timeout, and checks each outcome: `Ok` must match the
/// fault-free answer, errors must come from the allowed set (checked by
/// the caller via the returned list).
fn run_corpus(
    serve: &ServeEngine,
    doc: &Arc<Document>,
    rounds: usize,
) -> Vec<(usize, Result<Value, ServeError>)> {
    let expected = expected_answers(doc);
    let mut outcomes = Vec::new();
    for _ in 0..rounds {
        let tickets: Vec<_> = corpus::QUERIES
            .iter()
            .map(|q| serve.query(Corpus::Document(Arc::clone(doc)), q))
            .collect();
        for (i, t) in tickets.into_iter().enumerate() {
            let got = t
                .wait_timeout(RESOLVE_WITHIN)
                .unwrap_or_else(|| panic!("ticket for {:?} hung", corpus::QUERIES[i]));
            if let Ok(v) = &got {
                match &expected[i] {
                    Ok(w) => assert!(
                        values_agree(v, w),
                        "{}: chaos answer {v:?} != fault-free {w:?}",
                        corpus::QUERIES[i]
                    ),
                    Err(w) => panic!("{}: got Ok({v:?}), want Err({w:?})", corpus::QUERIES[i]),
                }
            }
            outcomes.push((i, got));
        }
    }
    outcomes
}

/// After `chaos::clear()`, the same pool must serve the whole corpus
/// with zero errors beyond the fault-free expectations.
fn assert_pool_recovered(serve: &ServeEngine, doc: &Arc<Document>) {
    let expected = expected_answers(doc);
    for (i, q) in corpus::QUERIES.iter().enumerate() {
        let got = serve
            .query(Corpus::Document(Arc::clone(doc)), q)
            .wait_timeout(RESOLVE_WITHIN)
            .unwrap_or_else(|| panic!("post-chaos ticket for {q:?} hung"));
        match (&got, &expected[i]) {
            (Ok(g), Ok(w)) => assert!(values_agree(g, w), "{q}: {g:?} != {w:?}"),
            (Err(ServeError::Eval(g)), Err(w)) => assert_eq!(g, w, "{q}"),
            _ => panic!("{q}: post-chaos {got:?}, want {:?}", expected[i]),
        }
    }
}

#[test]
fn contained_eval_panics_fail_only_their_own_ticket() {
    let _guard = chaos_guard();
    let _clear = ClearOnDrop;
    let doc = test_doc();
    let serve = ServeEngine::builder().workers(3).build();

    chaos::install(ChaosPlan {
        seed: 0xDEAD_BEEF,
        eval_panic_per_mille: 250,
        ..ChaosPlan::default()
    });
    let expected = expected_answers(&doc);
    let outcomes = run_corpus(&serve, &doc, 4);
    let panicked = outcomes
        .iter()
        .filter(|(_, r)| matches!(r, Err(ServeError::WorkerPanicked { .. })))
        .count();
    for (i, r) in &outcomes {
        assert!(
            matches!(r, Ok(_) | Err(ServeError::WorkerPanicked { .. }))
                || matches!((r, &expected[*i]), (Err(ServeError::Eval(g)), Err(w)) if g == w),
            "{}: unexpected outcome {r:?}",
            corpus::QUERIES[*i]
        );
    }
    assert!(panicked > 0, "a 25% eval-panic rate fired zero times");

    // Contained panics never kill threads: no respawns, full pool.
    let stats = serve.stats();
    assert_eq!(stats.panics as usize, panicked);
    assert_eq!(stats.worker_respawns, 0);
    assert_eq!(serve.live_workers(), serve.worker_count());

    chaos::clear();
    assert_pool_recovered(&serve, &doc);
    drop(serve);
}

#[test]
fn escaped_worker_panics_respawn_and_strand_no_ticket() {
    let _guard = chaos_guard();
    let _clear = ClearOnDrop;
    let doc = test_doc();
    let serve = ServeEngine::builder().workers(3).build();

    chaos::install(ChaosPlan {
        seed: 42,
        worker_kill_per_mille: 200,
        ..ChaosPlan::default()
    });
    let expected = expected_answers(&doc);
    let outcomes = run_corpus(&serve, &doc, 4);
    // A killed worker drops the job it had just popped — that one
    // ticket resolves Disconnected; nothing may hang.
    let dropped = outcomes
        .iter()
        .filter(|(_, r)| matches!(r, Err(ServeError::Disconnected)))
        .count();
    for (i, r) in &outcomes {
        assert!(
            matches!(r, Ok(_) | Err(ServeError::Disconnected))
                || matches!((r, &expected[*i]), (Err(ServeError::Eval(g)), Err(w)) if g == w),
            "{}: unexpected outcome {r:?}",
            corpus::QUERIES[*i]
        );
    }
    assert!(dropped > 0, "a 20% worker-kill rate fired zero times");

    // Every Disconnected ticket corresponds to one worker death, and
    // every death must be answered by one respawn.
    wait_until("respawns catch up with deaths", || {
        serve.stats().worker_respawns as usize >= dropped
    });
    assert_eq!(serve.stats().worker_respawns as usize, dropped);
    wait_until("pool back to full strength", || {
        serve.live_workers() == serve.worker_count()
    });

    chaos::clear();
    assert_pool_recovered(&serve, &doc);
    drop(serve);
}

#[test]
fn shard_lock_panics_poison_then_recover() {
    let _guard = chaos_guard();
    let _clear = ClearOnDrop;
    let doc = test_doc();
    // One shard per cache concentrates the poisoning on a single lock.
    let serve = ServeEngine::builder().workers(3).shards(1).build();

    chaos::install(ChaosPlan {
        seed: 7,
        shard_panic_per_mille: 150,
        ..ChaosPlan::default()
    });
    let outcomes = run_corpus(&serve, &doc, 4);
    let panicked = outcomes
        .iter()
        .filter(|(_, r)| matches!(r, Err(ServeError::WorkerPanicked { .. })))
        .count();
    assert!(panicked > 0, "a 15% shard-panic rate fired zero times");
    assert_eq!(serve.live_workers(), serve.worker_count());

    chaos::clear();
    // The poisoned-and-cleared cache must serve hits again, not just
    // not-crash: replay twice and demand query-cache hits.
    assert_pool_recovered(&serve, &doc);
    assert_pool_recovered(&serve, &doc);
    assert!(
        serve.stats().query_hits > 0,
        "query cache never recovered to serving hits"
    );
    drop(serve);
}

#[test]
fn mixed_chaos_storm_holds_every_invariant_for_fixed_seeds() {
    let _guard = chaos_guard();
    let _clear = ClearOnDrop;
    let doc = test_doc();
    for seed in [1u64, 2, 3] {
        let serve = ServeEngine::builder().workers(4).shards(2).build();
        chaos::install(ChaosPlan {
            seed,
            eval_panic_per_mille: 100,
            worker_kill_per_mille: 80,
            shard_panic_per_mille: 60,
        });
        // Mixed load: plain corpus replays plus deadline-storm requests
        // whose budgets are already dead on arrival.
        let storm: Vec<_> = (0..32)
            .map(|_| {
                serve.query_with_budget(
                    Corpus::Document(Arc::clone(&doc)),
                    "count(//*)",
                    Budget::timeout(Duration::ZERO),
                )
            })
            .collect();
        let outcomes = run_corpus(&serve, &doc, 3);
        for t in storm {
            let got = t
                .wait_timeout(RESOLVE_WITHIN)
                .expect("deadline-storm ticket hung");
            assert!(
                matches!(
                    got,
                    Err(ServeError::Eval(EvalError::BudgetExhausted { .. }))
                        | Err(ServeError::WorkerPanicked { .. })
                        | Err(ServeError::Disconnected)
                ),
                "dead-on-arrival budget produced {got:?}"
            );
        }
        assert!(!outcomes.is_empty());
        wait_until("pool back to full strength", || {
            serve.live_workers() == serve.worker_count()
        });
        chaos::clear();
        assert_pool_recovered(&serve, &doc);
        drop(serve); // must not hang on shutdown either
    }
}

/// Regression for the ticket-semantics bug: with a single worker that
/// panics on *every* request, all outstanding tickets must still
/// resolve — before panic isolation, the first panic killed the lone
/// worker and every queued ticket hung forever.
#[test]
fn panicking_worker_mid_job_resolves_every_outstanding_ticket() {
    let _guard = chaos_guard();
    let _clear = ClearOnDrop;
    let doc = test_doc();
    let serve = ServeEngine::builder().workers(1).build();

    chaos::install(ChaosPlan {
        seed: 99,
        eval_panic_per_mille: 1000,
        ..ChaosPlan::default()
    });
    let tickets: Vec<_> = (0..16)
        .map(|_| serve.query(Corpus::Document(Arc::clone(&doc)), "count(//*)"))
        .collect();
    for (i, t) in tickets.into_iter().enumerate() {
        let got = t
            .wait_timeout(RESOLVE_WITHIN)
            .unwrap_or_else(|| panic!("outstanding ticket {i} hung"));
        assert!(
            matches!(got, Err(ServeError::WorkerPanicked { .. })),
            "ticket {i}: {got:?}"
        );
    }
    assert_eq!(serve.stats().panics, 16);
    assert_eq!(serve.live_workers(), 1);

    chaos::clear();
    assert_pool_recovered(&serve, &doc);
}

/// Same regression at the harsher site: every request *kills* the lone
/// worker outright.  Each death must respawn a replacement that picks
/// up the next queued job.
#[test]
fn serial_worker_deaths_never_strand_the_queue() {
    let _guard = chaos_guard();
    let _clear = ClearOnDrop;
    let doc = test_doc();
    let serve = ServeEngine::builder().workers(1).build();

    chaos::install(ChaosPlan {
        seed: 5,
        worker_kill_per_mille: 1000,
        ..ChaosPlan::default()
    });
    let tickets: Vec<_> = (0..8)
        .map(|_| serve.query(Corpus::Document(Arc::clone(&doc)), "count(//*)"))
        .collect();
    for (i, t) in tickets.into_iter().enumerate() {
        let got = t
            .wait_timeout(RESOLVE_WITHIN)
            .unwrap_or_else(|| panic!("ticket {i} stranded by worker death"));
        assert!(
            matches!(got, Err(ServeError::Disconnected)),
            "ticket {i}: {got:?}"
        );
    }
    wait_until("eight respawns recorded", || {
        serve.stats().worker_respawns >= 8
    });
    assert_eq!(serve.stats().worker_respawns, 8);
    wait_until("lone worker back", || serve.live_workers() == 1);

    chaos::clear();
    assert_pool_recovered(&serve, &doc);
}

#[test]
fn retry_policy_backoff_is_deterministic_and_capped() {
    let p = RetryPolicy::default()
        .base_delay(Duration::from_millis(5))
        .max_delay(Duration::from_millis(40));
    assert_eq!(p.delay_before(0), Duration::from_millis(5));
    assert_eq!(p.delay_before(1), Duration::from_millis(10));
    assert_eq!(p.delay_before(2), Duration::from_millis(20));
    assert_eq!(p.delay_before(3), Duration::from_millis(40));
    assert_eq!(p.delay_before(4), Duration::from_millis(40));
    assert_eq!(p.delay_before(63), Duration::from_millis(40));
}

#[test]
fn retry_recovers_from_contained_panics() {
    let _guard = chaos_guard();
    let _clear = ClearOnDrop;
    let doc = test_doc();
    let serve = ServeEngine::builder().workers(2).build();

    // Roughly half of requests panic.  The decision stream is fixed by
    // the seed, so either this seed lets one of the eight attempts
    // through (it does) or the test fails every run — no flakiness.
    chaos::install(ChaosPlan {
        seed: 11,
        eval_panic_per_mille: 500,
        ..ChaosPlan::default()
    });
    let policy = RetryPolicy::default()
        .attempts(8)
        .base_delay(Duration::from_millis(1));
    let v = serve
        .query_with_retry(
            Corpus::Document(Arc::clone(&doc)),
            "count(/*)",
            Budget::UNLIMITED,
            policy,
        )
        .expect("8 attempts at 50% contained-panic rate all failed");
    assert_eq!(v, Value::Number(1.0));
    chaos::clear();
}

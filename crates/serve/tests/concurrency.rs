//! Differential concurrency tests: N client threads against one shared
//! mapped snapshot must see exactly the answers a single-threaded
//! engine produces, and the service's budgets must shed load as
//! `BudgetExhausted` through the [`Ticket`], never panic or hang.
//!
//! (No loom in a std-only workspace — these are barrier-synchronized
//! stress tests, not exhaustive interleaving checks; the shard and
//! queue layers carry their own unit tests.)

use minctx_bench::{corpus, values_agree, xmark_doc, XmarkConfig};
use minctx_core::{open_snapshot, write_snapshot, Budget, Engine, EvalError, Strategy, Value};
use minctx_serve::{Corpus, ServeEngine, ServeError, ShardedLru};
use std::path::PathBuf;
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("minctx-serve-{}-{name}.mctx", std::process::id()))
}

/// Sequential ground truth: the same strategy, one thread, fresh engine.
fn sequential_answers(doc: &minctx_xml::Document) -> Vec<Result<Value, EvalError>> {
    let engine = Engine::new(Strategy::OptMinContext);
    corpus::QUERIES
        .iter()
        .map(|q| engine.evaluate_str(doc, q))
        .collect()
}

#[test]
fn concurrent_clients_match_single_threaded_on_a_shared_snapshot() {
    // Every corpus document becomes a snapshot; 8 client threads then
    // replay the full query corpus against the shared mapping and must
    // get bit-identical values.
    const CLIENTS: usize = 8;
    let serve = Arc::new(ServeEngine::builder().workers(4).build());
    for (name, doc) in corpus::documents() {
        let path = temp(&format!("diff-{name}"));
        write_snapshot(&doc, &path).unwrap();
        let mapped = open_snapshot(&path).unwrap();
        let expected = Arc::new(sequential_answers(&mapped));

        let barrier = Arc::new(Barrier::new(CLIENTS));
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let serve = Arc::clone(&serve);
                let expected = Arc::clone(&expected);
                let barrier = Arc::clone(&barrier);
                let path = path.clone();
                thread::spawn(move || {
                    barrier.wait();
                    for (q, want) in corpus::QUERIES.iter().zip(expected.iter()) {
                        let got = serve
                            .query(Corpus::Snapshot(path.clone()), q)
                            .wait()
                            .map_err(|e| match e {
                                ServeError::Eval(e) => e,
                                e => panic!("service failed: {e:?}"),
                            });
                        match (&got, want) {
                            (Ok(g), Ok(w)) => {
                                assert!(values_agree(g, w), "{q}: got {g:?}, want {w:?}");
                            }
                            (Err(g), Err(w)) => assert_eq!(g, w, "{q}"),
                            _ => panic!("{q}: got {got:?}, want {want:?}"),
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        std::fs::remove_file(&path).ok();
    }
    // Each snapshot was mapped at most a handful of times (cold-key
    // races), not once per request.
    let stats = serve.stats();
    assert!(
        stats.snapshot_hits > stats.snapshot_misses,
        "cache should absorb most opens: {stats:?}"
    );
    assert!(stats.query_hits > stats.query_misses, "{stats:?}");
}

#[test]
fn shared_parsed_document_serves_many_threads() {
    // Same differential check without the snapshot layer: one parsed
    // xmark document shared by Arc across client threads.
    let doc = Arc::new(xmark_doc(&XmarkConfig::sized(20_000)));
    let expected = Arc::new(sequential_answers(&doc));
    let serve = Arc::new(ServeEngine::builder().workers(4).build());
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let serve = Arc::clone(&serve);
            let doc = Arc::clone(&doc);
            let expected = Arc::clone(&expected);
            thread::spawn(move || {
                for (q, want) in corpus::QUERIES.iter().zip(expected.iter()) {
                    let got = serve.query(Corpus::Document(Arc::clone(&doc)), q).wait();
                    match (&got, want) {
                        (Ok(g), Ok(w)) => {
                            assert!(values_agree(g, w), "{q}: got {g:?}, want {w:?}");
                        }
                        (Err(ServeError::Eval(g)), Err(w)) => assert_eq!(g, w, "{q}"),
                        _ => panic!("{q}: got {got:?}, want {want:?}"),
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn pathological_request_is_shed_by_its_deadline() {
    // A zero-duration deadline trips before any work happens; the
    // exhaustion surfaces through the ticket as an error, and the pool
    // keeps serving afterwards.
    let doc = Arc::new(xmark_doc(&XmarkConfig::sized(20_000)));
    let serve = ServeEngine::builder().workers(2).build();
    let err = serve
        .query_with_budget(
            Corpus::Document(Arc::clone(&doc)),
            "count(//*[count(ancestor::*) < count(descendant::*)])",
            Budget::timeout(Duration::ZERO),
        )
        .wait()
        .unwrap_err();
    assert!(
        matches!(err, ServeError::Eval(EvalError::BudgetExhausted { .. })),
        "{err:?}"
    );
    // The pool is still healthy.
    let v = serve
        .query(Corpus::Document(doc), "count(/*)")
        .wait()
        .unwrap();
    assert_eq!(v, Value::Number(1.0));
}

#[test]
fn tiny_fuel_budget_is_honored_per_request() {
    let doc = Arc::new(xmark_doc(&XmarkConfig::sized(20_000)));
    let serve = ServeEngine::builder().workers(2).build();
    // The predicate filters every element as a candidate, which charges
    // per candidate — far beyond 10 units on a 20k-node document.  (A
    // bare `count(//*)` is *cheap* under MinContext: charges scale with
    // context-set sizes, not output size.)
    let err = serve
        .query_with_budget(
            Corpus::Document(Arc::clone(&doc)),
            "count(//*[child::*])",
            Budget::fuel(10),
        )
        .wait()
        .unwrap_err();
    assert!(
        matches!(err, ServeError::Eval(EvalError::BudgetExhausted { .. })),
        "{err:?}"
    );
    // An unbudgeted request on the same engine is unaffected.
    assert!(serve
        .query(Corpus::Document(doc), "count(//*)")
        .wait()
        .is_ok());
}

#[test]
fn dropping_the_engine_answers_or_disconnects_every_ticket() {
    let doc = Arc::new(xmark_doc(&XmarkConfig::sized(5_000)));
    let serve = ServeEngine::builder().workers(2).build();
    let tickets: Vec<_> = (0..50)
        .map(|_| serve.query(Corpus::Document(Arc::clone(&doc)), "count(//*)"))
        .collect();
    drop(serve); // closes the queue, drains, joins
    for t in tickets {
        // Already-queued jobs are drained on close, so every ticket
        // resolves; none may hang.
        match t.wait() {
            Ok(v) => assert!(matches!(v, Value::Number(n) if n > 0.0)),
            Err(ServeError::Disconnected) => {}
            Err(e) => panic!("{e:?}"),
        }
    }
}

#[test]
fn sharded_lru_is_coherent_under_contention() {
    // Barrier-released threads hammer one ShardedLru with overlapping
    // key ranges; every observed value must be one some thread wrote
    // for that key, and residency stays within capacity.
    const THREADS: usize = 8;
    let cache: Arc<ShardedLru<u32, Arc<(u32, u32)>>> = Arc::new(ShardedLru::new(64, 8));
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS as u32)
        .map(|t| {
            let cache = Arc::clone(&cache);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                for round in 0..200u32 {
                    for key in 0..32u32 {
                        cache.insert(key, Arc::new((key, t * 1000 + round)));
                        if let Some(v) = cache.get(&key) {
                            // Values are never torn: the payload always
                            // carries its own key.
                            assert_eq!(v.0, key);
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert!(cache.len() <= 64);
    assert!(!cache.is_empty());
}

//! The serving pool's observability surface: per-engine registry
//! exposition, queue-wait quantiles in [`ServeStats`], per-outcome
//! latency histograms, and the builder-attached request log.

use minctx_obs::{AttrValue, CollectSink, Phase, Recorder};
use minctx_serve::{Corpus, ServeEngine, ServeError};
use std::sync::Arc;

fn small_doc() -> Arc<minctx_xml::Document> {
    Arc::new(minctx_xml::parse("<a><b/><b/><c/></a>").unwrap())
}

#[test]
fn stats_and_exposition_track_requests_per_engine() {
    let doc = small_doc();
    let serve = ServeEngine::builder().workers(2).build();
    for _ in 0..10 {
        let v = serve
            .query(Corpus::Document(Arc::clone(&doc)), "count(//b)")
            .wait()
            .unwrap();
        assert_eq!(v, minctx_core::Value::Number(2.0));
    }
    // One failing request lands in the error latency histogram.
    let err = serve
        .query(Corpus::Document(Arc::clone(&doc)), "//b[")
        .wait()
        .unwrap_err();
    assert!(matches!(err, ServeError::Eval(_)));

    let stats = serve.stats();
    assert_eq!(stats.requests, 11);
    assert_eq!(stats.shed, 0);
    // Quantiles come from the bucketed queue-wait histogram; ordering
    // must hold even when every wait rounds to the same bucket.
    assert!(stats.queue_wait_p50 <= stats.queue_wait_p99);

    let text = serve.metrics_text();
    assert!(text.contains("# TYPE serve_requests counter"), "{text}");
    assert!(text.contains("serve_requests 11"), "{text}");
    assert!(text.contains("# TYPE serve_queue_wait_us histogram"));
    assert!(text.contains("serve_latency_ok_us_count 10"), "{text}");
    assert!(text.contains("serve_latency_error_us_count 1"), "{text}");

    let json = serve.metrics_json();
    assert!(json.contains("\"serve/requests\":11"), "{json}");
    assert!(json.contains("\"serve/latency_ok_us\""), "{json}");

    // A second pool's registry is independent: fresh counters.
    let other = ServeEngine::builder().workers(1).build();
    other
        .query(Corpus::Document(doc), "count(//c)")
        .wait()
        .unwrap();
    assert!(other.metrics_text().contains("serve_requests 1"));
    assert!(serve.metrics_text().contains("serve_requests 11"));
}

#[test]
fn request_log_emits_one_serve_span_per_request() {
    let doc = small_doc();
    let sink = Arc::new(CollectSink::new());
    let serve = ServeEngine::builder()
        .workers(1)
        .request_log(Recorder::to_sink(sink.clone()))
        .build();
    for _ in 0..3 {
        serve
            .query(Corpus::Document(Arc::clone(&doc)), "count(//b)")
            .wait()
            .unwrap();
    }
    serve
        .query(Corpus::Document(doc), "//b[")
        .wait()
        .unwrap_err();
    let spans = sink.take();
    assert_eq!(spans.len(), 4);
    assert!(spans.iter().all(|s| s.phase == Phase::Serve));
    let outcomes: Vec<_> = spans
        .iter()
        .filter_map(|s| match s.attr("outcome") {
            Some(AttrValue::Str(o)) => Some(o.as_str()),
            _ => None,
        })
        .collect();
    assert_eq!(outcomes.iter().filter(|o| **o == "ok").count(), 3);
    assert_eq!(outcomes.iter().filter(|o| **o == "error").count(), 1);
    assert!(spans
        .iter()
        .all(|s| matches!(s.attr("wait_us"), Some(&AttrValue::U64(_)))));
    assert!(spans
        .iter()
        .any(|s| { matches!(s.attr("query"), Some(AttrValue::Str(q)) if q == "count(//b)") }));
}

//! loom models for the serve layer's concurrency protocols.
//!
//! These tests only exist under `--cfg loom` (see the CI `loom` job,
//! which adds the loom dev-dependency transiently and runs
//! `RUSTFLAGS="--cfg loom" cargo test -p minctx-serve --test loom`);
//! in a normal build this file compiles to nothing.  Each model drives
//! the *real* [`Queue`], [`ShardedLru`], and [`LiveCount`] code through
//! every interleaving loom can reach, checking:
//!
//! * no job is lost or double-delivered across `push`/`pop`/`close`;
//! * a bounded queue's `Full` fast-reject never deadlocks anyone;
//! * the live-worker count never transiently dips during a respawn
//!   handoff;
//! * the sharded cache never leaks a locked shard (every `get`/`insert`
//!   completes and later observers see a consistent shard).
//!
//! The same invariants are checked offline (no loom, exhaustive DFS at
//! critical-section granularity) by `tests/protocol_model.rs` — loom
//! adds coverage of the condvar wakeups and atomic orderings the
//! offline checker abstracts away.
#![cfg(loom)]

use loom::sync::Arc;
use loom::thread;
use minctx_serve::{LiveCount, PushError, Queue, ShardedLru, TryPop};

/// Drains the queue non-blockingly, spinning (with a loom yield) while
/// it is empty-but-open.  Models a worker loop without parking on the
/// condvar, which keeps the state space tractable while still exploring
/// every publication order.
fn drain(q: &Queue<u32>) -> Vec<u32> {
    let mut got = Vec::new();
    loop {
        match q.try_pop() {
            TryPop::Item(v) => got.push(v),
            TryPop::Closed => return got,
            TryPop::Empty => thread::yield_now(),
        }
    }
}

#[test]
fn queue_delivers_each_item_exactly_once() {
    loom::model(|| {
        let q = Arc::new(Queue::new());
        let producers: Vec<_> = (0..2u32)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || q.push(p).unwrap())
            })
            .collect();
        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || drain(&q))
        };
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut got = consumer.join().unwrap();
        got.sort_unstable();
        assert_eq!(got, [0, 1], "every pushed item delivered exactly once");
    });
}

#[test]
fn two_consumers_never_double_deliver() {
    loom::model(|| {
        let q = Arc::new(Queue::new());
        q.push(7u32).unwrap();
        q.close();
        let takers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || drain(&q))
            })
            .collect();
        let got: Vec<u32> = takers.into_iter().flat_map(|t| t.join().unwrap()).collect();
        assert_eq!(got, [7], "one item must reach exactly one consumer");
    });
}

#[test]
fn blocking_pop_sees_close() {
    // The condvar path proper: a parked `pop` must always be woken by
    // `close` and return `None` — no lost-wakeup interleaving exists.
    loom::model(|| {
        let q = Arc::new(Queue::<u32>::new());
        let waiter = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.pop())
        };
        q.close();
        assert_eq!(waiter.join().unwrap(), None);
    });
}

#[test]
fn bounded_full_rejection_never_deadlocks() {
    loom::model(|| {
        let q = Arc::new(Queue::bounded(1));
        let pushers: Vec<_> = (0..2u32)
            .map(|p| {
                let q = Arc::clone(&q);
                // `push` on a full bounded queue fast-rejects; it must
                // never block, so both pushers always terminate.
                thread::spawn(move || q.push(p))
            })
            .collect();
        let outcomes: Vec<_> = pushers.into_iter().map(|p| p.join().unwrap()).collect();
        let accepted = outcomes.iter().filter(|o| o.is_ok()).count();
        let rejected = outcomes
            .iter()
            .filter(|o| matches!(o, Err(PushError::Full { capacity: 1, .. })))
            .count();
        // Capacity 1, nothing draining: exactly one wins admission.
        assert_eq!((accepted, rejected), (1, 1));
        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || drain(&q))
        };
        q.close();
        assert_eq!(consumer.join().unwrap().len(), 1);
    });
}

#[test]
fn live_count_never_dips_during_handoff() {
    loom::model(|| {
        let live = Arc::new(LiveCount::new());
        live.adopt(); // the steady worker
        live.adopt(); // the worker about to die and respawn
        let observer = {
            let live = Arc::clone(&live);
            thread::spawn(move || {
                // At every point the observer can run, both the steady
                // worker and the dying-or-replacement worker must be
                // counted: a dip to 1 would let a teardown path
                // conclude the pool has shrunk.
                assert!(live.get() >= 2, "live count transiently dipped");
            })
        };
        let dying = {
            let live = Arc::clone(&live);
            thread::spawn(move || live.handoff(|| live.adopt()))
        };
        dying.join().unwrap();
        observer.join().unwrap();
        assert_eq!(live.get(), 2, "handoff preserves the pool size");
    });
}

#[test]
fn sharded_lru_never_leaks_a_locked_shard() {
    loom::model(|| {
        // One shard forces both threads through the same lock; if any
        // path returned without releasing it, the second op (and the
        // final len) would deadlock and loom would flag the hang.
        let c = Arc::new(ShardedLru::<u32, u32>::new(8, 1));
        let writer = {
            let c = Arc::clone(&c);
            thread::spawn(move || c.insert(1, 10))
        };
        let reader = {
            let c = Arc::clone(&c);
            thread::spawn(move || c.get(&1))
        };
        writer.join().unwrap();
        let seen = reader.join().unwrap();
        assert!(seen.is_none() || seen == Some(10));
        // The shard is unlocked and consistent after both ops.
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.len(), 1);
    });
}

//! The synchronization facade: every lock, condvar, and atomic the
//! serve layer uses comes through here, so the whole crate can be
//! re-pointed at [loom](https://docs.rs/loom)'s model-checked
//! implementations by building with `RUSTFLAGS="--cfg loom"`.
//!
//! Under `cfg(loom)` the CI job adds the `loom` dev-dependency and runs
//! `tests/loom.rs`, which explores *every* interleaving of the queue,
//! cache, and live-count protocols up to loom's bounds.  The dependency
//! is deliberately not committed to `Cargo.toml` — the workspace builds
//! offline and dependency-free; the loom job adds it transiently.
//!
//! Production code must not import `std::sync::{Mutex, Condvar}` or
//! `std::sync::atomic` directly anywhere else in this crate.  The
//! exceptions, all deliberate: `std::sync::Arc` and `mpsc` (loom models
//! we don't swap), the chaos-injection machinery (test-only
//! instrumentation on real atomics), and the monotonic [`ServeStats`]
//! counters (pure diagnostics — no protocol decision reads them, so
//! model-checking their interleavings would only blow up loom's state
//! space).
//!
//! [`ServeStats`]: crate::service::ServeStats

#[cfg(not(loom))]
pub(crate) use std::sync::{Condvar, Mutex, MutexGuard};

#[cfg(loom)]
pub(crate) use loom::sync::{Condvar, Mutex, MutexGuard};

pub(crate) mod atomic {
    #[cfg(not(loom))]
    pub(crate) use std::sync::atomic::AtomicUsize;

    #[cfg(loom)]
    pub(crate) use loom::sync::atomic::AtomicUsize;
}

//! `minctx-serve`: a concurrent query service over shared, immutable
//! documents.
//!
//! The rest of the workspace is deliberately single-threaded per
//! evaluation; this crate adds the serving layer the paper's
//! complexity results make attractive: because every evaluator is
//! polynomial-time over an *immutable* arena [`Document`] (and the
//! mmap-able snapshot form is zero-copy), one document can serve many
//! concurrent queries with no copies and no locks on the data itself.
//!
//! * [`ServeEngine`] — N worker threads pulling `(corpus, query)` jobs
//!   off one MPMC queue; each submission returns a [`Ticket`].
//! * Two sharded LRUs shared by the pool: mapped snapshots keyed by
//!   **content stamp** (peeked from the 104-byte snapshot header, no
//!   full-file scan), and compiled queries keyed by
//!   `(query text, doc stamp)`.
//! * Per-request [`Budget`](minctx_core::Budget)s — fuel and/or
//!   deadline — anchored at submission time, so queue wait counts and a
//!   saturated pool sheds load as
//!   [`BudgetExhausted`](minctx_core::EvalError::BudgetExhausted)
//!   rather than stretching tail latency.
//! * Fault tolerance: evaluation panics are contained per-request
//!   ([`ServeError::WorkerPanicked`]), dead workers respawn, cache
//!   shards recover from lock poisoning, and a bounded admission queue
//!   sheds overload as [`ServeError::Overloaded`] — with
//!   [`RetryPolicy`] backoff for callers that want to wait a burst
//!   out.  The [`chaos`] module injects seeded panics at each
//!   isolation boundary so these claims stay tested.
//!
//! ```
//! use minctx_core::Value;
//! use minctx_serve::{Corpus, ServeEngine};
//! use minctx_xml::parse;
//! use std::sync::Arc;
//!
//! let doc = Arc::new(parse("<a><b>1</b><b>2</b></a>").unwrap());
//! let serve = ServeEngine::builder().workers(2).build();
//! let tickets: Vec<_> = ["count(//b)", "sum(//b)"]
//!     .iter()
//!     .map(|q| serve.query(Corpus::Document(Arc::clone(&doc)), q))
//!     .collect();
//! let answers: Vec<Value> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
//! assert_eq!(answers, [Value::Number(2.0), Value::Number(3.0)]);
//! ```

#![forbid(unsafe_code)]

pub mod chaos;
pub mod live;
pub mod queue;
pub mod service;
pub mod shard;
pub(crate) mod sync;

pub use chaos::ChaosPlan;
pub use live::LiveCount;
pub use queue::{PushError, Queue, TryPop};
pub use service::{Corpus, RetryPolicy, ServeBuilder, ServeEngine, ServeError, ServeStats, Ticket};
pub use shard::ShardedLru;

// The service hands `ServeEngine` references and `Ticket`s across
// threads; both must be thread-safe by construction (tickets are Send
// but not Sync — each belongs to one waiter).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    const fn assert_send<T: Send>() {}
    assert_send_sync::<ServeEngine>();
    assert_send_sync::<Corpus>();
    assert_send_sync::<ServeError>();
    assert_send_sync::<ServeStats>();
    assert_send_sync::<RetryPolicy>();
    assert_send_sync::<ChaosPlan>();
    assert_send::<Ticket>();
};

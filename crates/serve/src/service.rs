//! The worker pool itself: [`ServeEngine`] owns N threads that pull
//! `(corpus, query)` jobs off a shared [`Queue`](crate::queue::Queue),
//! resolve the document through a snapshot LRU keyed on content stamps,
//! resolve the compiled query through a `(query, doc_stamp)` LRU, and
//! evaluate under the request's [`Budget`] — anchored at submission
//! time, so queueing delay counts against the deadline.

use crate::queue::Queue;
use crate::shard::ShardedLru;
use minctx_core::{
    open_snapshot, snapshot_stamp, Budget, CompiledQuery, Context, Engine, EvalError, Strategy,
    Value,
};
use minctx_syntax::parse_xpath;
use minctx_xml::Document;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::Instant;

/// What a request evaluates against: a persistent snapshot on disk
/// (mapped once per content stamp, shared by every worker) or an
/// already-parsed document the caller holds.
#[derive(Debug, Clone)]
pub enum Corpus {
    /// Path to a snapshot written by
    /// [`write_snapshot`](minctx_core::write_snapshot).  The service
    /// peeks only the 104-byte header per request (to learn the content
    /// stamp) and maps the full file once per distinct stamp.
    Snapshot(PathBuf),
    /// A parsed document shared by reference; zero per-request I/O.
    Document(Arc<Document>),
}

/// What a [`Ticket`] can fail with.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The evaluation itself failed (parse error, snapshot error,
    /// [`EvalError::BudgetExhausted`], ...).
    Eval(EvalError),
    /// The service shut down before answering — the engine was dropped
    /// while this request was queued.
    Disconnected,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Eval(e) => write!(f, "{e}"),
            ServeError::Disconnected => write!(f, "service shut down before answering"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Eval(e) => Some(e),
            ServeError::Disconnected => None,
        }
    }
}

impl From<EvalError> for ServeError {
    fn from(e: EvalError) -> ServeError {
        ServeError::Eval(e)
    }
}

/// The reply handle for one submitted request.
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<Value, EvalError>>,
}

impl Ticket {
    /// Blocks until the worker pool answers.
    pub fn wait(self) -> Result<Value, ServeError> {
        match self.rx.recv() {
            Ok(Ok(v)) => Ok(v),
            Ok(Err(e)) => Err(ServeError::Eval(e)),
            Err(mpsc::RecvError) => Err(ServeError::Disconnected),
        }
    }

    /// Non-blocking poll; `None` while the request is still in flight.
    pub fn try_wait(&self) -> Option<Result<Value, ServeError>> {
        match self.rx.try_recv() {
            Ok(Ok(v)) => Some(Ok(v)),
            Ok(Err(e)) => Some(Err(ServeError::Eval(e))),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::Disconnected)),
        }
    }
}

struct Job {
    corpus: Corpus,
    query: Arc<str>,
    budget: Budget,
    /// Submission instant — deadlines are anchored here, so time spent
    /// waiting in the queue counts against the request's budget.
    submitted: Instant,
    reply: mpsc::Sender<Result<Value, EvalError>>,
}

/// Monotone service counters, readable while the pool runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    pub requests: u64,
    pub query_hits: u64,
    pub query_misses: u64,
    pub snapshot_hits: u64,
    pub snapshot_misses: u64,
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    query_hits: AtomicU64,
    query_misses: AtomicU64,
    snapshot_hits: AtomicU64,
    snapshot_misses: AtomicU64,
}

/// State every worker shares.
struct Shared {
    queue: Queue<Job>,
    /// Mapped snapshots keyed by content stamp: the stamp is derived
    /// from document content (with the snapshot bit set), so two paths
    /// to the same bytes share one mapping, and a rewritten file is
    /// re-mapped under its new stamp — no mtime heuristics.
    snapshots: ShardedLru<u64, Arc<Document>>,
    /// Compiled queries keyed by `(query text, doc stamp)`: compilation
    /// bakes in document name-codes, so the same XPath against a
    /// different document is a different entry.
    queries: ShardedLru<(Arc<str>, u64), Arc<CompiledQuery>>,
    counters: Counters,
}

/// Configuration for a [`ServeEngine`]; `ServeEngine::builder()` is the
/// entry point, [`build`](ServeBuilder::build) spawns the pool.
#[derive(Debug, Clone)]
pub struct ServeBuilder {
    workers: usize,
    strategy: Strategy,
    optimize: Option<bool>,
    snapshot_cache_capacity: usize,
    query_cache_capacity: usize,
    shards: usize,
    default_budget: Budget,
}

impl Default for ServeBuilder {
    fn default() -> ServeBuilder {
        ServeBuilder {
            workers: thread::available_parallelism()
                .map(|n| n.get().min(4))
                .unwrap_or(1),
            strategy: Strategy::OptMinContext,
            optimize: None,
            snapshot_cache_capacity: 8,
            query_cache_capacity: 256,
            shards: 8,
            default_budget: Budget::UNLIMITED,
        }
    }
}

impl ServeBuilder {
    /// Worker thread count (default: `min(4, available_parallelism)`).
    pub fn workers(mut self, n: usize) -> ServeBuilder {
        self.workers = n.max(1);
        self
    }

    /// Evaluation strategy for every worker (default: `OptMinContext`).
    pub fn strategy(mut self, s: Strategy) -> ServeBuilder {
        self.strategy = s;
        self
    }

    /// Force the rewrite pipeline on or off (default: the engine's own
    /// default, which honors `MINCTX_NO_OPTIMIZER`).
    pub fn optimizer(mut self, on: bool) -> ServeBuilder {
        self.optimize = Some(on);
        self
    }

    /// Distinct mapped snapshots kept resident (default 8).
    pub fn snapshot_cache_capacity(mut self, n: usize) -> ServeBuilder {
        self.snapshot_cache_capacity = n.max(1);
        self
    }

    /// Distinct `(query, document)` compilations kept resident
    /// (default 256).
    pub fn query_cache_capacity(mut self, n: usize) -> ServeBuilder {
        self.query_cache_capacity = n.max(1);
        self
    }

    /// Lock shards per cache (default 8).
    pub fn shards(mut self, n: usize) -> ServeBuilder {
        self.shards = n.max(1);
        self
    }

    /// Budget applied to requests submitted via
    /// [`ServeEngine::query`]; per-request budgets override it.
    pub fn default_budget(mut self, b: Budget) -> ServeBuilder {
        self.default_budget = b;
        self
    }

    /// Spawns the worker pool.
    pub fn build(self) -> ServeEngine {
        let shared = Arc::new(Shared {
            queue: Queue::new(),
            snapshots: ShardedLru::new(self.snapshot_cache_capacity, self.shards),
            queries: ShardedLru::new(self.query_cache_capacity, self.shards),
            counters: Counters::default(),
        });
        let workers = (0..self.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let strategy = self.strategy;
                let optimize = self.optimize;
                thread::Builder::new()
                    .name(format!("minctx-serve-{i}"))
                    .spawn(move || {
                        // Each worker owns its engine — and with it a
                        // private scratch pool — so evaluation never
                        // shares mutable state across threads.
                        let mut engine = Engine::new(strategy);
                        if let Some(on) = optimize {
                            engine = engine.with_optimizer(on);
                        }
                        while let Some(job) = shared.queue.pop() {
                            shared.counters.requests.fetch_add(1, Ordering::Relaxed);
                            let result = serve_one(&engine, &shared, &job);
                            // A dropped Ticket just discards the answer.
                            let _ = job.reply.send(result);
                        }
                    })
                    .expect("failed to spawn serve worker")
            })
            .collect();
        ServeEngine {
            shared,
            workers,
            default_budget: self.default_budget,
        }
    }
}

/// Resolve document and compiled query through the shared caches, then
/// evaluate under the request's meter.  Cache misses compute outside
/// any shard lock; a race on a cold key costs one duplicated
/// compilation, never a stall.
fn serve_one(engine: &Engine, shared: &Shared, job: &Job) -> Result<Value, EvalError> {
    let doc = match &job.corpus {
        Corpus::Document(doc) => Arc::clone(doc),
        Corpus::Snapshot(path) => {
            let stamp = snapshot_stamp(path).map_err(|e| EvalError::Snapshot(Arc::new(e)))?;
            match shared.snapshots.get(&stamp) {
                Some(doc) => {
                    shared
                        .counters
                        .snapshot_hits
                        .fetch_add(1, Ordering::Relaxed);
                    doc
                }
                None => {
                    shared
                        .counters
                        .snapshot_misses
                        .fetch_add(1, Ordering::Relaxed);
                    let doc = Arc::new(
                        open_snapshot(path).map_err(|e| EvalError::Snapshot(Arc::new(e)))?,
                    );
                    shared.snapshots.insert(stamp, Arc::clone(&doc));
                    doc
                }
            }
        }
    };
    let key = (Arc::clone(&job.query), doc.stamp());
    let compiled = match shared.queries.get(&key) {
        Some(c) => {
            shared.counters.query_hits.fetch_add(1, Ordering::Relaxed);
            c
        }
        None => {
            shared.counters.query_misses.fetch_add(1, Ordering::Relaxed);
            let query = parse_xpath(&job.query)?;
            let c = Arc::new(engine.compile_uncached(&doc, &query));
            shared.queries.insert(key, Arc::clone(&c));
            c
        }
    };
    let mut meter = job.budget.meter_at(job.submitted);
    engine.evaluate_compiled_metered(&doc, &compiled, Context::document(&doc), &mut meter)
}

/// A shared-snapshot query service: N worker threads, two sharded LRUs
/// (mapped snapshots by content stamp, compiled queries by
/// `(query, doc_stamp)`), per-request fuel/deadline budgets.
///
/// Dropping the engine closes the queue, drains already-queued jobs,
/// and joins every worker.
pub struct ServeEngine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    default_budget: Budget,
}

impl ServeEngine {
    /// A pool with default configuration; see [`ServeEngine::builder`]
    /// for the knobs.
    pub fn new() -> ServeEngine {
        ServeBuilder::default().build()
    }

    pub fn builder() -> ServeBuilder {
        ServeBuilder::default()
    }

    /// Submits a request under the pool's default budget.
    pub fn query(&self, corpus: Corpus, query: &str) -> Ticket {
        self.query_with_budget(corpus, query, self.default_budget)
    }

    /// Submits a request with its own budget.  The deadline clock starts
    /// *now* — queueing delay counts, so a saturated pool sheds load as
    /// `BudgetExhausted` instead of stretching tail latency unboundedly.
    pub fn query_with_budget(&self, corpus: Corpus, query: &str, budget: Budget) -> Ticket {
        let (tx, rx) = mpsc::channel();
        let job = Job {
            corpus,
            query: Arc::from(query),
            budget,
            submitted: Instant::now(),
            reply: tx,
        };
        // Push can only fail after close(), i.e. mid-drop; dropping the
        // job drops its sender and the ticket reports Disconnected.
        let _ = self.shared.queue.push(job);
        Ticket { rx }
    }

    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// A point-in-time copy of the service counters.
    pub fn stats(&self) -> ServeStats {
        let c = &self.shared.counters;
        ServeStats {
            requests: c.requests.load(Ordering::Relaxed),
            query_hits: c.query_hits.load(Ordering::Relaxed),
            query_misses: c.query_misses.load(Ordering::Relaxed),
            snapshot_hits: c.snapshot_hits.load(Ordering::Relaxed),
            snapshot_misses: c.snapshot_misses.load(Ordering::Relaxed),
        }
    }
}

impl Default for ServeEngine {
    fn default() -> ServeEngine {
        ServeEngine::new()
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.shared.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl std::fmt::Debug for ServeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeEngine")
            .field("workers", &self.workers.len())
            .field("default_budget", &self.default_budget)
            .field("stats", &self.stats())
            .finish()
    }
}

//! The worker pool itself: [`ServeEngine`] owns N threads that pull
//! `(corpus, query)` jobs off a shared [`Queue`](crate::queue::Queue),
//! resolve the document through a snapshot LRU keyed on content stamps,
//! resolve the compiled query through a `(query, doc_stamp)` LRU, and
//! evaluate under the request's [`Budget`] — anchored at submission
//! time, so queueing delay counts against the deadline.
//!
//! # Fault tolerance
//!
//! The pool is built so that one bad request cannot take the service
//! down, and overload degrades loudly instead of silently:
//!
//! * **Panic isolation** — evaluation runs inside `catch_unwind`; a
//!   panicking request surfaces as [`ServeError::WorkerPanicked`] on
//!   its own ticket, the worker rebuilds its engine (post-unwind state
//!   is suspect) and keeps serving.  A panic that escapes the fence
//!   kills the thread, but a respawn sentry replaces it, so queued
//!   requests never hang on a shrunken pool.
//! * **Admission control** — the queue is bounded
//!   ([`ServeBuilder::queue_capacity`]); a full queue fast-rejects with
//!   [`ServeError::Overloaded`] on the ticket rather than stretching
//!   every deadline in line.  [`ServeEngine::query_with_retry`] layers
//!   deterministic exponential backoff on top for callers that prefer
//!   to wait out a burst.
//! * **Quarantine** — a snapshot that fails validation (bad magic,
//!   checksum mismatch, truncation) is renamed aside to `*.corrupt` via
//!   [`quarantine_snapshot`](minctx_core::quarantine_snapshot), so a
//!   corrupt file is inspected once, not re-read on every request.

use crate::chaos;
use crate::live::LiveCount;
use crate::queue::{PushError, Queue};
use crate::shard::ShardedLru;
use minctx_core::{
    open_snapshot_or_quarantine, quarantine_snapshot, snapshot_stamp, Budget, CompiledQuery,
    Context, Engine, EvalError, Exhausted, SnapshotError, Strategy, Value,
};
use minctx_obs::{Counter, Histogram, Phase, Recorder, Registry};
use minctx_syntax::parse_xpath;
use minctx_xml::Document;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// What a request evaluates against: a persistent snapshot on disk
/// (mapped once per content stamp, shared by every worker) or an
/// already-parsed document the caller holds.
#[derive(Debug, Clone)]
pub enum Corpus {
    /// Path to a snapshot written by
    /// [`write_snapshot`](minctx_core::write_snapshot).  The service
    /// peeks only the 104-byte header per request (to learn the content
    /// stamp) and maps the full file once per distinct stamp.
    Snapshot(PathBuf),
    /// A parsed document shared by reference; zero per-request I/O.
    Document(Arc<Document>),
}

/// What a [`Ticket`] can fail with.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The evaluation itself failed (parse error, snapshot error,
    /// [`EvalError::BudgetExhausted`], ...).
    Eval(EvalError),
    /// The worker thread panicked while serving *this* request.  The
    /// panic was contained: the worker rebuilt its engine and the pool
    /// is healthy — only this request is lost.  Retryable.
    WorkerPanicked {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The request was shed at admission: the queue already held
    /// `capacity` jobs.  Nothing was enqueued; the service never saw
    /// the request.  Retryable after backoff.
    Overloaded {
        /// The queue capacity the request bounced off.
        capacity: usize,
    },
    /// The service shut down before answering — the engine was dropped
    /// while this request was queued.
    Disconnected,
}

impl ServeError {
    /// Whether resubmitting the same request can plausibly succeed:
    /// admission-control sheds, contained worker panics, and deadline
    /// exhaustion (a fresh submission re-anchors the deadline clock).
    /// Fuel exhaustion is deterministic and `Disconnected` is final, so
    /// neither is retryable.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ServeError::Overloaded { .. }
                | ServeError::WorkerPanicked { .. }
                | ServeError::Eval(EvalError::BudgetExhausted {
                    cause: Exhausted::Deadline,
                })
        )
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Eval(e) => write!(f, "{e}"),
            ServeError::WorkerPanicked { message } => {
                write!(f, "worker panicked while serving this request: {message}")
            }
            ServeError::Overloaded { capacity } => {
                write!(f, "request shed: queue full at capacity {capacity}")
            }
            ServeError::Disconnected => write!(f, "service shut down before answering"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Eval(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EvalError> for ServeError {
    fn from(e: EvalError) -> ServeError {
        ServeError::Eval(e)
    }
}

/// Deterministic exponential backoff for [`ServeEngine::query_with_retry`]:
/// retry `r` (zero-based) sleeps `min(base_delay · 2^r, max_delay)`.
/// No jitter — retry schedules stay reproducible in tests and chaos
/// runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    attempts: u32,
    base_delay: Duration,
    max_delay: Duration,
}

impl Default for RetryPolicy {
    /// Three attempts, 5 ms base, 100 ms cap.
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 3,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(100),
        }
    }
}

impl RetryPolicy {
    /// Total attempts including the first (clamped to at least 1).
    pub fn attempts(mut self, n: u32) -> RetryPolicy {
        self.attempts = n.max(1);
        self
    }

    /// Sleep before the first retry; doubles per retry.
    pub fn base_delay(mut self, d: Duration) -> RetryPolicy {
        self.base_delay = d;
        self
    }

    /// Upper bound on any single sleep.
    pub fn max_delay(mut self, d: Duration) -> RetryPolicy {
        self.max_delay = d;
        self
    }

    /// The sleep taken before zero-based retry `retry`.
    pub fn delay_before(&self, retry: u32) -> Duration {
        let factor = 1u32 << retry.min(20);
        self.base_delay.saturating_mul(factor).min(self.max_delay)
    }
}

/// The reply handle for one submitted request.
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<Value, ServeError>>,
}

impl Ticket {
    /// Blocks until the worker pool answers.
    pub fn wait(self) -> Result<Value, ServeError> {
        match self.rx.recv() {
            Ok(r) => r,
            Err(mpsc::RecvError) => Err(ServeError::Disconnected),
        }
    }

    /// Non-blocking poll; `None` while the request is still in flight.
    pub fn try_wait(&self) -> Option<Result<Value, ServeError>> {
        match self.rx.try_recv() {
            Ok(r) => Some(r),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::Disconnected)),
        }
    }

    /// Blocks at most `timeout`; `None` if the request is still in
    /// flight when it elapses (the ticket remains usable).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<Value, ServeError>> {
        match self.rx.recv_timeout(timeout) {
            Ok(r) => Some(r),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => Some(Err(ServeError::Disconnected)),
        }
    }
}

struct Job {
    corpus: Corpus,
    query: Arc<str>,
    budget: Budget,
    /// Submission instant — deadlines are anchored here, so time spent
    /// waiting in the queue counts against the request's budget.
    submitted: Instant,
    reply: mpsc::Sender<Result<Value, ServeError>>,
}

/// Monotone service counters, readable while the pool runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    pub requests: u64,
    pub query_hits: u64,
    pub query_misses: u64,
    pub snapshot_hits: u64,
    pub snapshot_misses: u64,
    /// Requests fast-rejected at admission ([`ServeError::Overloaded`]).
    pub shed: u64,
    /// Panics contained by the evaluation fence
    /// ([`ServeError::WorkerPanicked`] tickets).
    pub panics: u64,
    /// Worker threads replaced after a panic escaped the fence.
    pub worker_respawns: u64,
    /// High-watermark queue depth observed at admission.
    pub max_queue_depth: u64,
    /// High-watermark queue wait (submission → worker pickup).
    pub max_queue_wait: Duration,
    /// Median queue wait, from the `serve/queue_wait_us` histogram
    /// (bucketed — exact to ~3%; [`Duration::ZERO`] before any pickup).
    pub queue_wait_p50: Duration,
    /// 99th-percentile queue wait, same source and precision.
    pub queue_wait_p99: Duration,
}

/// Per-engine metrics: every counter and histogram is a handle into the
/// engine's *private* [`Registry`] (not the process-global one — two
/// pools in one process must not mix their numbers), rendered by
/// [`ServeEngine::metrics_text`].  The two high-watermark atomics stay
/// exact alongside the bucketed histograms.
struct Metrics {
    registry: Registry,
    requests: Counter,
    query_hits: Counter,
    query_misses: Counter,
    snapshot_hits: Counter,
    snapshot_misses: Counter,
    shed: Counter,
    panics: Counter,
    worker_respawns: Counter,
    /// Queue depth observed at each admission.
    queue_depth: Histogram,
    /// Submission → worker-pickup wait, in microseconds.
    queue_wait_us: Histogram,
    /// Submission → reply latency in microseconds, split by outcome.
    latency_ok_us: Histogram,
    latency_error_us: Histogram,
    latency_budget_us: Histogram,
    latency_panic_us: Histogram,
    latency_shed_us: Histogram,
    max_queue_depth: AtomicU64,
    max_queue_wait_micros: AtomicU64,
}

impl Metrics {
    fn new() -> Metrics {
        let registry = Registry::new();
        Metrics {
            requests: registry.counter("serve/requests"),
            query_hits: registry.counter("serve/query_hits"),
            query_misses: registry.counter("serve/query_misses"),
            snapshot_hits: registry.counter("serve/snapshot_hits"),
            snapshot_misses: registry.counter("serve/snapshot_misses"),
            shed: registry.counter("serve/shed"),
            panics: registry.counter("serve/panics"),
            worker_respawns: registry.counter("serve/worker_respawns"),
            queue_depth: registry.histogram("serve/queue_depth"),
            queue_wait_us: registry.histogram("serve/queue_wait_us"),
            latency_ok_us: registry.histogram("serve/latency_ok_us"),
            latency_error_us: registry.histogram("serve/latency_error_us"),
            latency_budget_us: registry.histogram("serve/latency_budget_exhausted_us"),
            latency_panic_us: registry.histogram("serve/latency_panic_us"),
            latency_shed_us: registry.histogram("serve/latency_shed_us"),
            max_queue_depth: AtomicU64::new(0),
            max_queue_wait_micros: AtomicU64::new(0),
            registry,
        }
    }

    /// The per-outcome latency histogram a finished request records into.
    fn latency_for(&self, reply: &Result<Value, ServeError>) -> &Histogram {
        match reply {
            Ok(_) => &self.latency_ok_us,
            Err(ServeError::Eval(EvalError::BudgetExhausted { .. })) => &self.latency_budget_us,
            Err(ServeError::Eval(_)) => &self.latency_error_us,
            Err(ServeError::WorkerPanicked { .. }) => &self.latency_panic_us,
            Err(ServeError::Overloaded { .. }) => &self.latency_shed_us,
            Err(ServeError::Disconnected) => &self.latency_error_us,
        }
    }
}

/// State every worker shares.
struct Shared {
    queue: Queue<Job>,
    /// Mapped snapshots keyed by content stamp: the stamp is derived
    /// from document content (with the snapshot bit set), so two paths
    /// to the same bytes share one mapping, and a rewritten file is
    /// re-mapped under its new stamp — no mtime heuristics.
    snapshots: ShardedLru<u64, Arc<Document>>,
    /// Compiled queries keyed by `(query text, doc stamp)`: compilation
    /// bakes in document name-codes, so the same XPath against a
    /// different document is a different entry.
    queries: ShardedLru<(Arc<str>, u64), Arc<CompiledQuery>>,
    metrics: Metrics,
    /// Request-lifecycle recorder ([`ServeBuilder::request_log`]): one
    /// [`Phase::Serve`] span per served request.  Disabled by default.
    recorder: Recorder,
    /// Threads currently in a worker loop — originals and respawns
    /// alike.  [`ServeEngine::drop`] spins this to zero so no worker
    /// (not even an unjoined respawn) outlives the engine's teardown
    /// accounting.  The handoff protocol lives in [`LiveCount`].
    live_workers: LiveCount,
}

/// Configuration for a [`ServeEngine`]; `ServeEngine::builder()` is the
/// entry point, [`build`](ServeBuilder::build) spawns the pool.
#[derive(Debug, Clone)]
pub struct ServeBuilder {
    workers: usize,
    strategy: Strategy,
    optimize: Option<bool>,
    threads: usize,
    snapshot_cache_capacity: usize,
    query_cache_capacity: usize,
    shards: usize,
    default_budget: Budget,
    queue_capacity: usize,
    recorder: Recorder,
}

impl Default for ServeBuilder {
    fn default() -> ServeBuilder {
        ServeBuilder {
            workers: thread::available_parallelism()
                .map(|n| n.get().min(4))
                .unwrap_or(1),
            strategy: Strategy::OptMinContext,
            optimize: None,
            threads: 1,
            snapshot_cache_capacity: 8,
            query_cache_capacity: 256,
            shards: 8,
            default_budget: Budget::UNLIMITED,
            queue_capacity: 1024,
            recorder: Recorder::disabled(),
        }
    }
}

impl ServeBuilder {
    /// Worker thread count (default: `min(4, available_parallelism)`).
    pub fn workers(mut self, n: usize) -> ServeBuilder {
        self.workers = n.max(1);
        self
    }

    /// Evaluation strategy for every worker (default: `OptMinContext`).
    pub fn strategy(mut self, s: Strategy) -> ServeBuilder {
        self.strategy = s;
        self
    }

    /// Force the rewrite pipeline on or off (default: the engine's own
    /// default, which honors `MINCTX_NO_OPTIMIZER`).
    pub fn optimizer(mut self, on: bool) -> ServeBuilder {
        self.optimize = Some(on);
        self
    }

    /// Intra-query data-parallel threads per worker engine (default 1 —
    /// purely sequential, the pre-existing path).  Values above 1 give
    /// each worker's engine a [`Engine::with_threads`] pool, so large
    /// axis sweeps and predicate fan-outs split across that many
    /// threads; total thread pressure is roughly `workers × threads`,
    /// so raise this only when workers are few and documents are large.
    pub fn threads(mut self, n: usize) -> ServeBuilder {
        self.threads = n.max(1);
        self
    }

    /// Distinct mapped snapshots kept resident (default 8).
    pub fn snapshot_cache_capacity(mut self, n: usize) -> ServeBuilder {
        self.snapshot_cache_capacity = n.max(1);
        self
    }

    /// Distinct `(query, document)` compilations kept resident
    /// (default 256).
    pub fn query_cache_capacity(mut self, n: usize) -> ServeBuilder {
        self.query_cache_capacity = n.max(1);
        self
    }

    /// Lock shards per cache (default 8).
    pub fn shards(mut self, n: usize) -> ServeBuilder {
        self.shards = n.max(1);
        self
    }

    /// Budget applied to requests submitted via
    /// [`ServeEngine::query`]; per-request budgets override it.
    pub fn default_budget(mut self, b: Budget) -> ServeBuilder {
        self.default_budget = b;
        self
    }

    /// Admission-control bound: requests beyond this many queued jobs
    /// are fast-rejected with [`ServeError::Overloaded`] (default 1024,
    /// clamped to at least 1).
    pub fn queue_capacity(mut self, n: usize) -> ServeBuilder {
        self.queue_capacity = n.max(1);
        self
    }

    /// Attaches a request-log [`Recorder`]: every served request emits
    /// one [`Phase::Serve`] span (query text, outcome, queue wait, fuel
    /// budget) into the recorder's sink.  Pair with
    /// [`minctx_obs::JsonLinesSink`] (optionally
    /// [`with_sampling`](minctx_obs::JsonLinesSink::with_sampling)) for
    /// a sampled JSON-lines request log.  Default: disabled, near-free.
    pub fn request_log(mut self, recorder: Recorder) -> ServeBuilder {
        self.recorder = recorder;
        self
    }

    /// Spawns the worker pool.
    pub fn build(self) -> ServeEngine {
        let shared = Arc::new(Shared {
            queue: Queue::bounded(self.queue_capacity),
            snapshots: ShardedLru::new(self.snapshot_cache_capacity, self.shards),
            queries: ShardedLru::new(self.query_cache_capacity, self.shards),
            metrics: Metrics::new(),
            recorder: self.recorder,
            live_workers: LiveCount::new(),
        });
        let cfg = WorkerConfig {
            strategy: self.strategy,
            optimize: self.optimize,
            threads: self.threads,
        };
        let workers = (0..self.workers)
            .map(|i| spawn_worker(&shared, cfg, i).expect("failed to spawn serve worker"))
            .collect();
        ServeEngine {
            shared,
            workers,
            default_budget: self.default_budget,
        }
    }
}

/// Everything needed to (re)build a worker's private engine.
#[derive(Debug, Clone, Copy)]
struct WorkerConfig {
    strategy: Strategy,
    optimize: Option<bool>,
    threads: usize,
}

impl WorkerConfig {
    fn fresh_engine(&self) -> Engine {
        let mut engine = Engine::new(self.strategy);
        if let Some(on) = self.optimize {
            engine = engine.with_optimizer(on);
        }
        if self.threads > 1 {
            engine = engine.with_threads(self.threads);
        }
        engine
    }
}

/// Spawns one worker thread.  The live count adopts the worker *before*
/// the spawn (and abandons it on failure) so the count never dips to
/// zero between a dying worker and its replacement.
fn spawn_worker(
    shared: &Arc<Shared>,
    cfg: WorkerConfig,
    index: usize,
) -> std::io::Result<JoinHandle<()>> {
    shared.live_workers.adopt();
    let shared2 = Arc::clone(shared);
    let spawned = thread::Builder::new()
        .name(format!("minctx-serve-{index}"))
        .spawn(move || {
            let _sentry = RespawnSentry {
                shared: Arc::clone(&shared2),
                cfg,
                index,
            };
            worker_loop(&shared2, cfg);
        });
    if spawned.is_err() {
        shared.live_workers.abandon();
    }
    spawned
}

/// Runs on every worker exit path.  A clean exit (queue closed) just
/// decrements the live count; an exit by panic — something escaped the
/// evaluation fence — first spawns a replacement, so the pool never
/// shrinks and queued jobs never wait on dead threads.
struct RespawnSentry {
    shared: Arc<Shared>,
    cfg: WorkerConfig,
    index: usize,
}

impl Drop for RespawnSentry {
    fn drop(&mut self) {
        if thread::panicking() && !self.shared.queue.is_closed() {
            self.shared.metrics.worker_respawns.inc();
            // Replacement first, own retire second ([`LiveCount::handoff`]):
            // the live count stays positive across the handoff.  The
            // replacement is detached; ServeEngine::drop waits on
            // `live_workers`, not on join handles.  A failed spawn here
            // must not panic (we're already unwinding — it would
            // abort); the pool just runs one thread short.
            self.shared
                .live_workers
                .handoff(|| drop(spawn_worker(&self.shared, self.cfg, self.index)));
        } else {
            self.shared.live_workers.retire();
        }
    }
}

fn worker_loop(shared: &Arc<Shared>, cfg: WorkerConfig) {
    // Each worker owns its engine — and with it a private scratch
    // pool — so evaluation never shares mutable state across threads.
    let mut engine = cfg.fresh_engine();
    while let Some(job) = shared.queue.pop() {
        // A panic here escapes the fence and kills the worker; the
        // sentry respawns it.  (Chaos site: Worker.)
        chaos::tick(chaos::Site::Worker);
        shared.metrics.requests.inc();
        let waited = job.submitted.elapsed();
        shared.metrics.queue_wait_us.record_micros(waited);
        shared
            .metrics
            .max_queue_wait_micros
            .fetch_max(waited.as_micros() as u64, Ordering::Relaxed);
        let mut span = shared.recorder.span(Phase::Serve);
        let outcome = catch_unwind(AssertUnwindSafe(|| serve_one(&engine, shared, &job)));
        let reply = match outcome {
            Ok(r) => r.map_err(ServeError::Eval),
            Err(payload) => {
                shared.metrics.panics.inc();
                // The unwound engine's internal caches and scratch pool
                // are in an unknown state; rebuild from config.
                engine = cfg.fresh_engine();
                Err(ServeError::WorkerPanicked {
                    message: panic_message(payload.as_ref()),
                })
            }
        };
        span.attr_str("query", || job.query.to_string());
        span.attr_str("outcome", || outcome_name(&reply).to_string());
        span.attr_u64("wait_us", waited.as_micros() as u64);
        drop(span);
        shared
            .metrics
            .latency_for(&reply)
            .record_micros(job.submitted.elapsed());
        // A dropped Ticket just discards the answer.
        let _ = job.reply.send(reply);
    }
}

/// A stable outcome label for request-log spans (matches the per-outcome
/// latency histogram split).
fn outcome_name(reply: &Result<Value, ServeError>) -> &'static str {
    match reply {
        Ok(_) => "ok",
        Err(ServeError::Eval(EvalError::BudgetExhausted { .. })) => "budget_exhausted",
        Err(ServeError::Eval(_)) => "error",
        Err(ServeError::WorkerPanicked { .. }) => "panic",
        Err(ServeError::Overloaded { .. }) => "shed",
        Err(ServeError::Disconnected) => "disconnected",
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Resolve document and compiled query through the shared caches, then
/// evaluate under the request's meter.  Cache misses compute outside
/// any shard lock; a race on a cold key costs one duplicated
/// compilation, never a stall.  Runs inside the worker's panic fence.
fn serve_one(engine: &Engine, shared: &Shared, job: &Job) -> Result<Value, EvalError> {
    // Contained chaos site: a panic here must resolve THIS ticket as
    // WorkerPanicked and leave the pool healthy.
    chaos::tick(chaos::Site::Eval);
    let doc = match &job.corpus {
        Corpus::Document(doc) => Arc::clone(doc),
        Corpus::Snapshot(path) => {
            let stamp = match snapshot_stamp(path) {
                Ok(s) => s,
                Err(e) => {
                    // The header peek already proves the file is not a
                    // valid snapshot (unless the failure was plain I/O)
                    // — quarantine it now, same as a full-open failure.
                    if !matches!(e, SnapshotError::Io(_)) {
                        let _ = quarantine_snapshot(path);
                    }
                    return Err(EvalError::Snapshot(Arc::new(e)));
                }
            };
            match shared.snapshots.get(&stamp) {
                Some(doc) => {
                    shared.metrics.snapshot_hits.inc();
                    doc
                }
                None => {
                    shared.metrics.snapshot_misses.inc();
                    let doc = Arc::new(
                        open_snapshot_or_quarantine(path)
                            .map_err(|e| EvalError::Snapshot(Arc::new(e)))?,
                    );
                    shared.snapshots.insert(stamp, Arc::clone(&doc));
                    doc
                }
            }
        }
    };
    let key = (Arc::clone(&job.query), doc.stamp());
    let compiled = match shared.queries.get(&key) {
        Some(c) => {
            shared.metrics.query_hits.inc();
            c
        }
        None => {
            shared.metrics.query_misses.inc();
            let query = parse_xpath(&job.query)?;
            let c = Arc::new(engine.compile_uncached(&doc, &query));
            shared.queries.insert(key, Arc::clone(&c));
            c
        }
    };
    let mut meter = job.budget.meter_at(job.submitted);
    engine.evaluate_compiled_metered(&doc, &compiled, Context::document(&doc), &mut meter)
}

/// A shared-snapshot query service: N worker threads, two sharded LRUs
/// (mapped snapshots by content stamp, compiled queries by
/// `(query, doc_stamp)`), per-request fuel/deadline budgets, a bounded
/// admission queue, and panic-isolated workers (see the module docs'
/// *Fault tolerance* section).
///
/// Dropping the engine closes the queue, drains already-queued jobs,
/// joins every original worker, and waits for any respawned workers to
/// exit.
pub struct ServeEngine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    default_budget: Budget,
}

impl ServeEngine {
    /// A pool with default configuration; see [`ServeEngine::builder`]
    /// for the knobs.
    pub fn new() -> ServeEngine {
        ServeBuilder::default().build()
    }

    pub fn builder() -> ServeBuilder {
        ServeBuilder::default()
    }

    /// Submits a request under the pool's default budget.
    pub fn query(&self, corpus: Corpus, query: &str) -> Ticket {
        self.query_with_budget(corpus, query, self.default_budget)
    }

    /// Submits a request with its own budget.  The deadline clock starts
    /// *now* — queueing delay counts, so a saturated pool sheds load as
    /// `BudgetExhausted` instead of stretching tail latency unboundedly.
    ///
    /// If the queue is at capacity the request is shed immediately: the
    /// ticket resolves to [`ServeError::Overloaded`] without the job
    /// ever entering the queue.
    pub fn query_with_budget(&self, corpus: Corpus, query: &str, budget: Budget) -> Ticket {
        let (tx, rx) = mpsc::channel();
        let job = Job {
            corpus,
            query: Arc::from(query),
            budget,
            submitted: Instant::now(),
            reply: tx,
        };
        match self.shared.queue.push(job) {
            Ok(depth) => {
                self.shared.metrics.queue_depth.record(depth as u64);
                self.shared
                    .metrics
                    .max_queue_depth
                    .fetch_max(depth as u64, Ordering::Relaxed);
            }
            Err(PushError::Full { item, capacity }) => {
                self.shared.metrics.shed.inc();
                self.shared
                    .metrics
                    .latency_shed_us
                    .record_micros(item.submitted.elapsed());
                let _ = item.reply.send(Err(ServeError::Overloaded { capacity }));
            }
            // Closed can only happen mid-drop; dropping the job drops
            // its sender and the ticket reports Disconnected.
            Err(PushError::Closed(_)) => {}
        }
        Ticket { rx }
    }

    /// Submits synchronously, retrying transient failures
    /// ([`ServeError::is_retryable`]) under `policy`'s deterministic
    /// exponential backoff.  Returns the first success, the first
    /// permanent error, or — attempts exhausted — the last transient
    /// error.
    pub fn query_with_retry(
        &self,
        corpus: Corpus,
        query: &str,
        budget: Budget,
        policy: RetryPolicy,
    ) -> Result<Value, ServeError> {
        let mut last = None;
        for attempt in 0..policy.attempts.max(1) {
            if attempt > 0 {
                thread::sleep(policy.delay_before(attempt - 1));
            }
            match self.query_with_budget(corpus.clone(), query, budget).wait() {
                Ok(v) => return Ok(v),
                Err(e) if e.is_retryable() => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last.expect("at least one attempt always runs"))
    }

    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Worker threads currently serving — equals
    /// [`worker_count`](ServeEngine::worker_count) whenever the pool is
    /// healthy, including after panics (respawns replace the dead).
    pub fn live_workers(&self) -> usize {
        self.shared.live_workers.get()
    }

    /// Jobs currently queued (racy; diagnostics only).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// The admission-control bound.
    pub fn queue_capacity(&self) -> usize {
        self.shared.queue.capacity()
    }

    /// A point-in-time copy of the service counters.
    pub fn stats(&self) -> ServeStats {
        let m = &self.shared.metrics;
        let wait = m.queue_wait_us.snapshot();
        ServeStats {
            requests: m.requests.get(),
            query_hits: m.query_hits.get(),
            query_misses: m.query_misses.get(),
            snapshot_hits: m.snapshot_hits.get(),
            snapshot_misses: m.snapshot_misses.get(),
            shed: m.shed.get(),
            panics: m.panics.get(),
            worker_respawns: m.worker_respawns.get(),
            max_queue_depth: m.max_queue_depth.load(Ordering::Relaxed),
            max_queue_wait: Duration::from_micros(m.max_queue_wait_micros.load(Ordering::Relaxed)),
            queue_wait_p50: Duration::from_micros(wait.quantile(0.50).unwrap_or(0)),
            queue_wait_p99: Duration::from_micros(wait.quantile(0.99).unwrap_or(0)),
        }
    }

    /// The pool's metrics in Prometheus text exposition format: every
    /// `serve/*` counter and histogram (queue depth/wait, per-outcome
    /// latency).  The registry is per-engine, so two pools in one
    /// process each expose their own numbers.
    pub fn metrics_text(&self) -> String {
        self.shared.metrics.registry.render_prometheus()
    }

    /// [`ServeEngine::metrics_text`] as a JSON object (same registry).
    pub fn metrics_json(&self) -> String {
        self.shared.metrics.registry.render_json()
    }
}

impl Default for ServeEngine {
    fn default() -> ServeEngine {
        ServeEngine::new()
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.shared.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Respawned workers are detached (spawned mid-unwind, nobody
        // holds their handles); they exit promptly once the closed
        // queue drains.  Wait them out so "no leaked worker" holds by
        // the time drop returns.
        while self.shared.live_workers.get() > 0 {
            thread::yield_now();
        }
    }
}

impl std::fmt::Debug for ServeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeEngine")
            .field("workers", &self.workers.len())
            .field("live_workers", &self.live_workers())
            .field("default_budget", &self.default_budget)
            .field("stats", &self.stats())
            .finish()
    }
}

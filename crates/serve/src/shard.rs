//! A sharded LRU: the service's snapshot and compiled-query caches are
//! read-mostly and shared by every worker, so a single mutex would
//! serialize the pool.  Keys hash to one of N independently locked
//! [`LruCache`] shards; workers contend only when they touch the same
//! shard at the same instant.
//!
//! Lookups clone the value out (`V: Clone` — the service stores `Arc`s,
//! so a clone is a refcount bump) and release the lock immediately;
//! expensive misses (snapshot mapping, query compilation) are computed
//! *outside* any lock by the caller.  Two workers racing on the same
//! cold key may both compute — that duplicated work is accepted in
//! exchange for never holding a shard lock across I/O or compilation.
//!
//! The cache is immune to lock poisoning: a worker that panics while
//! holding a shard (a `Clone` that panics, or injected chaos) leaves
//! the shard's contents suspect, but cache contents are by definition
//! reconstructible — recovery clears the poison *and* the shard, and
//! every later hit or miss proceeds normally.

use minctx_core::LruCache;
use std::hash::{BuildHasher, Hash, RandomState};
use std::sync::{Mutex, MutexGuard};

pub struct ShardedLru<K, V> {
    shards: Box<[Mutex<LruCache<K, V>>]>,
    hasher: RandomState,
}

impl<K: Eq + Hash + Clone, V: Clone> ShardedLru<K, V> {
    /// A cache of ~`capacity` total entries spread over `shards` locks.
    /// Both are clamped to at least 1; each shard holds at least one
    /// entry, so the effective total can round up to `shards`.
    pub fn new(capacity: usize, shards: usize) -> ShardedLru<K, V> {
        let shards = shards.max(1);
        let per_shard = capacity.div_ceil(shards).max(1);
        ShardedLru {
            shards: (0..shards)
                .map(|_| Mutex::new(LruCache::new(per_shard)))
                .collect(),
            hasher: RandomState::new(),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<LruCache<K, V>> {
        let h = self.hasher.hash_one(key) as usize;
        &self.shards[h % self.shards.len()]
    }

    /// Locks a shard, recovering from poisoning.  The previous holder
    /// panicked mid-operation, so its contents may be half-mutated —
    /// but a cache entry is always re-derivable, so the safe recovery
    /// is to drop them all and carry on empty.
    fn lock(m: &Mutex<LruCache<K, V>>) -> MutexGuard<'_, LruCache<K, V>> {
        match m.lock() {
            Ok(g) => g,
            Err(poisoned) => {
                m.clear_poison();
                let mut g = poisoned.into_inner();
                g.clear();
                g
            }
        }
    }

    pub fn get(&self, key: &K) -> Option<V> {
        let mut shard = Self::lock(self.shard(key));
        crate::chaos::tick(crate::chaos::Site::Shard);
        shard.get(key).cloned()
    }

    pub fn insert(&self, key: K, value: V) {
        Self::lock(self.shard(&key)).insert(key, value);
    }

    /// Total resident entries across all shards (racy; diagnostics only).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| Self::lock(s).len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn get_returns_what_insert_stored() {
        // Capacity 64 over 4 shards = 16 per shard: even if RandomState
        // sends all 10 keys to one shard, nothing can evict.
        let c = ShardedLru::new(64, 4);
        for i in 0..10u32 {
            c.insert(i, i * 10);
        }
        assert_eq!(c.len(), 10);
        for i in 0..10u32 {
            assert_eq!(c.get(&i), Some(i * 10));
        }
        assert_eq!(c.get(&99), None);
    }

    #[test]
    fn capacity_bounds_total_residency() {
        // 8 entries over 4 shards = 2 per shard; hammering one value
        // range can never exceed shards * per_shard residents.
        let c = ShardedLru::new(8, 4);
        for i in 0..1000u32 {
            c.insert(i, i);
        }
        assert!(c.len() <= 8, "len {} exceeds capacity", c.len());
    }

    #[test]
    fn shard_and_capacity_floors() {
        let c: ShardedLru<u32, u32> = ShardedLru::new(0, 0);
        assert_eq!(c.shard_count(), 1);
        c.insert(1, 1);
        assert_eq!(c.get(&1), Some(1));
    }

    /// A value whose `Clone` panics while armed — which happens inside
    /// `get`, i.e. while the shard lock is held, poisoning the mutex.
    #[derive(Debug)]
    struct Bomb(&'static AtomicBool);

    impl Clone for Bomb {
        fn clone(&self) -> Bomb {
            if self.0.swap(false, Ordering::SeqCst) {
                panic!("bomb: clone panicked under the shard lock");
            }
            Bomb(self.0)
        }
    }

    #[test]
    fn poisoned_shard_recovers_and_keeps_serving() {
        static ARMED: AtomicBool = AtomicBool::new(false);
        // One shard, so the poisoned lock is the only lock.
        let c: ShardedLru<u32, Bomb> = ShardedLru::new(8, 1);
        c.insert(1, Bomb(&ARMED));
        ARMED.store(true, Ordering::SeqCst);
        let boom = catch_unwind(AssertUnwindSafe(|| c.get(&1)));
        assert!(boom.is_err(), "armed clone must panic");

        // The shard was poisoned mid-get; recovery drops the (suspect)
        // contents and clears the poison — no later call may panic.
        assert_eq!(c.len(), 0);
        assert!(c.get(&1).is_none(), "suspect contents must be dropped");
        c.insert(2, Bomb(&ARMED));
        assert!(c.get(&2).is_some(), "shard must serve after recovery");
        assert_eq!(c.len(), 1);
    }
}

//! A sharded LRU: the service's snapshot and compiled-query caches are
//! read-mostly and shared by every worker, so a single mutex would
//! serialize the pool.  Keys hash to one of N independently locked
//! [`LruCache`] shards; workers contend only when they touch the same
//! shard at the same instant.
//!
//! Lookups clone the value out (`V: Clone` — the service stores `Arc`s,
//! so a clone is a refcount bump) and release the lock immediately;
//! expensive misses (snapshot mapping, query compilation) are computed
//! *outside* any lock by the caller.  Two workers racing on the same
//! cold key may both compute — that duplicated work is accepted in
//! exchange for never holding a shard lock across I/O or compilation.
//!
//! The cache is immune to lock poisoning: a worker that panics while
//! holding a shard (a `Clone` that panics, or injected chaos) leaves
//! the shard's contents suspect, but cache contents are by definition
//! reconstructible — recovery clears the poison *and* the shard, and
//! every later hit or miss proceeds normally.
//!
//! # The drop-all recovery invariant
//!
//! Poison recovery deliberately drops **every** entry of the poisoned
//! shard, not just the entry the panicking holder touched: the LRU's
//! intrusive recency list may be half-relinked at the panic point, so
//! no individual entry can be trusted.  The invariant is exactly
//! shard-scoped, in both directions:
//!
//! * **everything in the poisoned shard goes** — a later `get` of any
//!   key hashing there misses (asserted by
//!   `poisoned_shard_recovers_and_keeps_serving`);
//! * **nothing outside it goes** — entries in the other `N − 1` shards
//!   are untouched, because recovery runs entirely under the one
//!   poisoned lock (asserted by
//!   `poisoning_one_shard_leaves_other_shards_intact`).

use crate::sync::{Mutex, MutexGuard};
use minctx_core::LruCache;
use std::hash::{BuildHasher, Hash, RandomState};

pub struct ShardedLru<K, V> {
    shards: Box<[Mutex<LruCache<K, V>>]>,
    hasher: RandomState,
}

impl<K: Eq + Hash + Clone, V: Clone> ShardedLru<K, V> {
    /// A cache of ~`capacity` total entries spread over `shards` locks.
    /// Both are clamped to at least 1; each shard holds at least one
    /// entry, so the effective total can round up to `shards`.
    pub fn new(capacity: usize, shards: usize) -> ShardedLru<K, V> {
        let shards = shards.max(1);
        let per_shard = capacity.div_ceil(shards).max(1);
        ShardedLru {
            shards: (0..shards)
                .map(|_| Mutex::new(LruCache::new(per_shard)))
                .collect(),
            hasher: RandomState::new(),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<LruCache<K, V>> {
        &self.shards[self.shard_index(key)]
    }

    /// Which shard `key` lives in.  Diagnostics and tests only — the
    /// mapping is stable for the life of this cache but differs between
    /// instances (the hasher is randomly seeded).
    pub fn shard_index(&self, key: &K) -> usize {
        let h = self.hasher.hash_one(key) as usize;
        h % self.shards.len()
    }

    /// Locks a shard, recovering from poisoning.  The previous holder
    /// panicked mid-operation, so its contents may be half-mutated —
    /// but a cache entry is always re-derivable, so the safe recovery
    /// is to drop them all and carry on empty (the shard-scoped
    /// drop-all invariant; see the module docs).
    fn lock(m: &Mutex<LruCache<K, V>>) -> MutexGuard<'_, LruCache<K, V>> {
        match m.lock() {
            Ok(g) => g,
            Err(poisoned) => {
                // (loom's mutex has no clear_poison; its models never
                // panic under the lock, so recovery is unreachable.)
                #[cfg(not(loom))]
                m.clear_poison();
                let mut g = poisoned.into_inner();
                g.clear();
                g
            }
        }
    }

    pub fn get(&self, key: &K) -> Option<V> {
        let mut shard = Self::lock(self.shard(key));
        crate::chaos::tick(crate::chaos::Site::Shard);
        shard.get(key).cloned()
    }

    pub fn insert(&self, key: K, value: V) {
        Self::lock(self.shard(&key)).insert(key, value);
    }

    /// Total resident entries across all shards (racy; diagnostics only).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| Self::lock(s).len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn get_returns_what_insert_stored() {
        // Capacity 64 over 4 shards = 16 per shard: even if RandomState
        // sends all 10 keys to one shard, nothing can evict.
        let c = ShardedLru::new(64, 4);
        for i in 0..10u32 {
            c.insert(i, i * 10);
        }
        assert_eq!(c.len(), 10);
        for i in 0..10u32 {
            assert_eq!(c.get(&i), Some(i * 10));
        }
        assert_eq!(c.get(&99), None);
    }

    #[test]
    fn capacity_bounds_total_residency() {
        // 8 entries over 4 shards = 2 per shard; hammering one value
        // range can never exceed shards * per_shard residents.
        let c = ShardedLru::new(8, 4);
        for i in 0..1000u32 {
            c.insert(i, i);
        }
        assert!(c.len() <= 8, "len {} exceeds capacity", c.len());
    }

    #[test]
    fn shard_and_capacity_floors() {
        let c: ShardedLru<u32, u32> = ShardedLru::new(0, 0);
        assert_eq!(c.shard_count(), 1);
        c.insert(1, 1);
        assert_eq!(c.get(&1), Some(1));
    }

    /// A value whose `Clone` panics while armed — which happens inside
    /// `get`, i.e. while the shard lock is held, poisoning the mutex.
    #[derive(Debug)]
    struct Bomb(&'static AtomicBool);

    impl Clone for Bomb {
        fn clone(&self) -> Bomb {
            if self.0.swap(false, Ordering::SeqCst) {
                panic!("bomb: clone panicked under the shard lock");
            }
            Bomb(self.0)
        }
    }

    #[test]
    fn poisoned_shard_recovers_and_keeps_serving() {
        static ARMED: AtomicBool = AtomicBool::new(false);
        // One shard, so the poisoned lock is the only lock.
        let c: ShardedLru<u32, Bomb> = ShardedLru::new(8, 1);
        c.insert(1, Bomb(&ARMED));
        ARMED.store(true, Ordering::SeqCst);
        let boom = catch_unwind(AssertUnwindSafe(|| c.get(&1)));
        assert!(boom.is_err(), "armed clone must panic");

        // The shard was poisoned mid-get; recovery drops the (suspect)
        // contents and clears the poison — no later call may panic.
        assert_eq!(c.len(), 0);
        assert!(c.get(&1).is_none(), "suspect contents must be dropped");
        c.insert(2, Bomb(&ARMED));
        assert!(c.get(&2).is_some(), "shard must serve after recovery");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn poisoning_one_shard_leaves_other_shards_intact() {
        static ARMED: AtomicBool = AtomicBool::new(false);
        // Plenty of capacity so nothing is ever evicted; enough keys
        // that with 4 shards some land outside the victim shard.
        let c: ShardedLru<u32, Bomb> = ShardedLru::new(64, 4);
        for k in 0..16u32 {
            c.insert(k, Bomb(&ARMED));
        }
        assert_eq!(c.len(), 16);
        let victim_key = 0u32;
        let victim_shard = c.shard_index(&victim_key);
        let cohabitants: Vec<u32> = (0..16)
            .filter(|k| c.shard_index(k) == victim_shard)
            .collect();
        let survivors: Vec<u32> = (0..16)
            .filter(|k| c.shard_index(k) != victim_shard)
            .collect();
        assert!(
            !survivors.is_empty(),
            "16 keys over 4 shards cannot all collide"
        );

        // Poison exactly the victim shard.
        ARMED.store(true, Ordering::SeqCst);
        let boom = catch_unwind(AssertUnwindSafe(|| c.get(&victim_key)));
        assert!(boom.is_err(), "armed clone must panic");

        // Drop-all is shard-scoped: every cohabitant of the poisoned
        // shard is gone, every entry elsewhere survives.
        for k in &cohabitants {
            assert!(
                c.get(k).is_none(),
                "key {k} in poisoned shard must be dropped"
            );
        }
        for k in &survivors {
            assert!(
                c.get(k).is_some(),
                "key {k} in a healthy shard must survive"
            );
        }
        assert_eq!(c.len(), survivors.len());
    }
}

//! A sharded LRU: the service's snapshot and compiled-query caches are
//! read-mostly and shared by every worker, so a single mutex would
//! serialize the pool.  Keys hash to one of N independently locked
//! [`LruCache`] shards; workers contend only when they touch the same
//! shard at the same instant.
//!
//! Lookups clone the value out (`V: Clone` — the service stores `Arc`s,
//! so a clone is a refcount bump) and release the lock immediately;
//! expensive misses (snapshot mapping, query compilation) are computed
//! *outside* any lock by the caller.  Two workers racing on the same
//! cold key may both compute — that duplicated work is accepted in
//! exchange for never holding a shard lock across I/O or compilation.

use minctx_core::LruCache;
use std::hash::{BuildHasher, Hash, RandomState};
use std::sync::Mutex;

pub struct ShardedLru<K, V> {
    shards: Box<[Mutex<LruCache<K, V>>]>,
    hasher: RandomState,
}

impl<K: Eq + Hash + Clone, V: Clone> ShardedLru<K, V> {
    /// A cache of ~`capacity` total entries spread over `shards` locks.
    /// Both are clamped to at least 1; each shard holds at least one
    /// entry, so the effective total can round up to `shards`.
    pub fn new(capacity: usize, shards: usize) -> ShardedLru<K, V> {
        let shards = shards.max(1);
        let per_shard = capacity.div_ceil(shards).max(1);
        ShardedLru {
            shards: (0..shards)
                .map(|_| Mutex::new(LruCache::new(per_shard)))
                .collect(),
            hasher: RandomState::new(),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<LruCache<K, V>> {
        let h = self.hasher.hash_one(key) as usize;
        &self.shards[h % self.shards.len()]
    }

    pub fn get(&self, key: &K) -> Option<V> {
        self.shard(key)
            .lock()
            .expect("shard poisoned")
            .get(key)
            .cloned()
    }

    pub fn insert(&self, key: K, value: V) {
        self.shard(&key)
            .lock()
            .expect("shard poisoned")
            .insert(key, value);
    }

    /// Total resident entries across all shards (racy; diagnostics only).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard poisoned").len())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_returns_what_insert_stored() {
        let c = ShardedLru::new(16, 4);
        for i in 0..10u32 {
            c.insert(i, i * 10);
        }
        assert_eq!(c.len(), 10);
        for i in 0..10u32 {
            assert_eq!(c.get(&i), Some(i * 10));
        }
        assert_eq!(c.get(&99), None);
    }

    #[test]
    fn capacity_bounds_total_residency() {
        // 8 entries over 4 shards = 2 per shard; hammering one value
        // range can never exceed shards * per_shard residents.
        let c = ShardedLru::new(8, 4);
        for i in 0..1000u32 {
            c.insert(i, i);
        }
        assert!(c.len() <= 8, "len {} exceeds capacity", c.len());
    }

    #[test]
    fn shard_and_capacity_floors() {
        let c: ShardedLru<u32, u32> = ShardedLru::new(0, 0);
        assert_eq!(c.shard_count(), 1);
        c.insert(1, 1);
        assert_eq!(c.get(&1), Some(1));
    }
}

//! A closeable, optionally bounded MPMC job queue: `Mutex<VecDeque>` +
//! `Condvar`, nothing fancier.  Producers [`push`](Queue::push), workers
//! block in [`pop`](Queue::pop); [`close`](Queue::close) drains
//! gracefully — queued jobs are still served, then every blocked worker
//! wakes up and receives `None`.
//!
//! A bounded queue ([`Queue::bounded`]) is the service's admission
//! valve: `push` **fast-rejects** with [`PushError::Full`] instead of
//! queueing unboundedly, so callers learn about overload at submission
//! time rather than by watching their deadline die in line.
//!
//! The queue is immune to lock poisoning: no caller-supplied code runs
//! under the lock (items are only moved in and out), so a panicking
//! thread that happened to hold it leaves the state consistent — the
//! poison flag is cleared and service continues.

use crate::sync::{Condvar, Mutex, MutexGuard};
use std::collections::VecDeque;

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Outcome of one non-blocking attempt at the pop critical section.
#[derive(Debug, PartialEq, Eq)]
pub enum TryPop<T> {
    /// An item was dequeued.
    Item(T),
    /// Nothing queued, queue still open — where [`pop`](Queue::pop)
    /// would block on the condvar.
    Empty,
    /// Closed and drained — where [`pop`](Queue::pop) returns `None`.
    Closed,
}

/// Why a [`push`](Queue::push) was refused; the item comes back.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue was closed; no new work is accepted.
    Closed(T),
    /// The queue is at capacity — the admission-control fast-reject.
    Full {
        item: T,
        /// The configured capacity the queue sat at.
        capacity: usize,
    },
}

pub struct Queue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> Queue<T> {
    /// An unbounded queue.
    pub fn new() -> Queue<T> {
        Queue::bounded(usize::MAX)
    }

    /// A queue refusing to hold more than `capacity` items (clamped to
    /// at least 1).
    pub fn bounded(capacity: usize) -> Queue<T> {
        Queue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity (`usize::MAX` when unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Locks the queue, recovering from poisoning: only item moves
    /// happen under this lock, so the state is consistent even after a
    /// holder panicked.
    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => {
                // (loom's mutex has no clear_poison; its models never
                // panic under the lock, so recovery is unreachable.)
                #[cfg(not(loom))]
                self.inner.clear_poison();
                poisoned.into_inner()
            }
        }
    }

    /// The pop critical section: exactly the state transition
    /// [`pop`](Queue::pop) performs between condvar waits.  Factored
    /// out so the exhaustive interleaving checker
    /// (`tests/protocol_model.rs`) drives the *same* code the blocking
    /// path runs.
    fn step(inner: &mut Inner<T>) -> TryPop<T> {
        if let Some(item) = inner.items.pop_front() {
            return TryPop::Item(item);
        }
        if inner.closed {
            return TryPop::Closed;
        }
        TryPop::Empty
    }

    /// One non-blocking pop attempt; [`TryPop::Empty`] is where
    /// [`pop`](Queue::pop) would block.
    pub fn try_pop(&self) -> TryPop<T> {
        Self::step(&mut self.lock())
    }

    /// Enqueues `item`, returning the queue depth including it, or hands
    /// it back if the queue is closed or full.
    pub fn push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full {
                item,
                capacity: self.capacity,
            });
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        drop(inner);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Blocks until an item is available; `None` once the queue is
    /// closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            match Self::step(&mut inner) {
                TryPop::Item(item) => return Some(item),
                TryPop::Closed => return None,
                TryPop::Empty => {}
            }
            inner = match self.ready.wait(inner) {
                Ok(g) => g,
                Err(poisoned) => {
                    #[cfg(not(loom))]
                    self.inner.clear_poison();
                    poisoned.into_inner()
                }
            };
        }
    }

    /// Stops accepting new items and wakes every blocked [`pop`](Queue::pop).
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Whether [`close`](Queue::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Items currently waiting (racy; diagnostics only).
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Default for Queue<T> {
    fn default() -> Queue<T> {
        Queue::new()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn try_pop_mirrors_pop_without_blocking() {
        let q = Queue::new();
        assert_eq!(q.try_pop(), TryPop::Empty);
        q.push(7).unwrap();
        assert_eq!(q.try_pop(), TryPop::Item(7));
        q.close();
        assert_eq!(q.try_pop(), TryPop::<i32>::Closed);
    }

    #[test]
    fn push_pop_is_fifo() {
        let q = Queue::new();
        assert_eq!(q.push(1), Ok(1));
        assert_eq!(q.push(2), Ok(2));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn close_rejects_new_items_but_drains_old_ones() {
        let q = Queue::new();
        q.push("queued").unwrap();
        q.close();
        assert_eq!(q.push("late"), Err(PushError::Closed("late")));
        assert_eq!(q.pop(), Some("queued"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn bounded_queue_fast_rejects_at_capacity() {
        let q = Queue::bounded(2);
        assert_eq!(q.capacity(), 2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(
            q.push(3),
            Err(PushError::Full {
                item: 3,
                capacity: 2
            })
        );
        // Draining reopens admission.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.push(3), Ok(2));
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(Queue::<u32>::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || q.pop())
            })
            .collect();
        q.close();
        for h in handles {
            assert_eq!(h.join().unwrap(), None);
        }
    }

    #[test]
    fn many_producers_many_consumers_lose_nothing() {
        let q = Arc::new(Queue::new());
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..100 {
                        q.push(p * 100 + i).unwrap();
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..400).collect::<Vec<_>>());
    }
}

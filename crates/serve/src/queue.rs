//! A closeable MPMC job queue: `Mutex<VecDeque>` + `Condvar`, nothing
//! fancier.  Producers [`push`](Queue::push), workers block in
//! [`pop`](Queue::pop); [`close`](Queue::close) drains gracefully —
//! queued jobs are still served, then every blocked worker wakes up and
//! receives `None`.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

pub struct Queue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
}

impl<T> Queue<T> {
    pub fn new() -> Queue<T> {
        Queue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Enqueues `item`, or hands it back if the queue has been closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed {
            return Err(item);
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until an item is available; `None` once the queue is
    /// closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("queue poisoned");
        }
    }

    /// Stops accepting new items and wakes every blocked [`pop`](Queue::pop).
    pub fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
        self.ready.notify_all();
    }

    /// Items currently waiting (racy; diagnostics only).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Default for Queue<T> {
    fn default() -> Queue<T> {
        Queue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn push_pop_is_fifo() {
        let q = Queue::new();
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn close_rejects_new_items_but_drains_old_ones() {
        let q = Queue::new();
        q.push("queued").unwrap();
        q.close();
        assert_eq!(q.push("late"), Err("late"));
        assert_eq!(q.pop(), Some("queued"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(Queue::<u32>::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || q.pop())
            })
            .collect();
        q.close();
        for h in handles {
            assert_eq!(h.join().unwrap(), None);
        }
    }

    #[test]
    fn many_producers_many_consumers_lose_nothing() {
        let q = Arc::new(Queue::new());
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..100 {
                        q.push(p * 100 + i).unwrap();
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..400).collect::<Vec<_>>());
    }
}

//! Seeded chaos injection for the worker pool.
//!
//! A [`ChaosPlan`] makes the service hurt itself on purpose, at three
//! panic sites chosen to exercise every isolation boundary the pool
//! claims to have:
//!
//! * [`Site::Eval`] — a panic *inside* the `catch_unwind` fence around
//!   evaluation.  Must surface as
//!   [`ServeError::WorkerPanicked`](crate::ServeError::WorkerPanicked)
//!   on that request's ticket; the worker lives on.
//! * [`Site::Worker`] — a panic *outside* the fence, in the worker loop
//!   itself.  The thread dies; the respawn sentry must replace it and
//!   every other queued request must still be answered.
//! * [`Site::Shard`] — a panic while **holding a cache shard lock**,
//!   poisoning the mutex.  The shard must recover (clear the poison,
//!   drop the disposable cache contents) on its next use.
//!
//! Decisions are deterministic: the n-th tick of a plan fires iff
//! `splitmix64(seed ⊕ n ⊕ site)` lands under the site's per-mille rate.
//! Given a fixed seed and workload, the *decision sequence* is fixed;
//! which thread draws each tick still depends on scheduling, which is
//! exactly the point — the suite asserts invariants that must hold under
//! any interleaving.
//!
//! The plan is process-global (worker threads must see it), guarded by a
//! relaxed [`AtomicBool`] fast path: with no plan installed a tick is
//! one atomic load.  Tests that install a plan serialize themselves on
//! the engines they build; `clear()` restores production behavior.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Per-mille panic rates for each [`Site`], driven by a fixed seed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Seed for the decision stream; same seed + same workload = same
    /// decision sequence.
    pub seed: u64,
    /// Rate (0..=1000) of panics inside the evaluation fence.
    pub eval_panic_per_mille: u16,
    /// Rate (0..=1000) of panics that escape the fence and kill the
    /// worker thread.
    pub worker_kill_per_mille: u16,
    /// Rate (0..=1000) of panics taken while holding a shard lock.
    pub shard_panic_per_mille: u16,
}

/// Where a chaos panic is raised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Site {
    Worker,
    Eval,
    Shard,
}

struct Active {
    plan: ChaosPlan,
    ticks: u64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static ACTIVE: Mutex<Option<Active>> = Mutex::new(None);

/// Installs `plan` process-wide; panics start firing on worker threads.
pub fn install(plan: ChaosPlan) {
    *lock_active() = Some(Active { plan, ticks: 0 });
    ENABLED.store(true, Ordering::Release);
}

/// Removes any installed plan; production behavior resumes.
pub fn clear() {
    ENABLED.store(false, Ordering::Release);
    *lock_active() = None;
}

/// Ticks consumed so far by the installed plan (0 when none).
pub fn ticks() -> u64 {
    lock_active().as_ref().map_or(0, |a| a.ticks)
}

fn lock_active() -> std::sync::MutexGuard<'static, Option<Active>> {
    // The guard is always dropped before a chaos panic is raised, so
    // the state (a plan + counter) can only be observed consistent;
    // recover rather than let one poisoned tick disable chaos.
    match ACTIVE.lock() {
        Ok(g) => g,
        Err(poisoned) => {
            ACTIVE.clear_poison();
            poisoned.into_inner()
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Consumes one decision for `site`; panics if the plan says so.  The
/// panic message names the seed, tick and site so a failing chaos run
/// is reproducible from its log line.
pub(crate) fn tick(site: Site) {
    if !ENABLED.load(Ordering::Acquire) {
        return;
    }
    let fired = {
        let mut guard = lock_active();
        let Some(a) = guard.as_mut() else { return };
        let n = a.ticks;
        a.ticks += 1;
        let rate = match site {
            Site::Worker => a.plan.worker_kill_per_mille,
            Site::Eval => a.plan.eval_panic_per_mille,
            Site::Shard => a.plan.shard_panic_per_mille,
        };
        let roll =
            splitmix64(a.plan.seed ^ n.wrapping_mul(0x517c_c1b7_2722_0a95) ^ site_salt(site));
        (roll % 1000 < u64::from(rate)).then_some((a.plan.seed, n))
    };
    if let Some((seed, n)) = fired {
        panic!("chaos: injected {site:?} panic (seed {seed}, tick {n})");
    }
}

fn site_salt(site: Site) -> u64 {
    match site {
        Site::Worker => 0x57_4f_52_4b,
        Site::Eval => 0x45_56_41_4c,
        Site::Shard => 0x53_48_41_52,
    }
}

//! The live-worker count and its respawn handoff protocol.
//!
//! [`ServeEngine::drop`](crate::service::ServeEngine) waits on this
//! count — not on join handles — so respawned (detached) workers are
//! still accounted for.  The protocol's one invariant:
//!
//! > **The count never transiently dips below the number of threads
//! > that are (or are about to be) serving.**
//!
//! Concretely: a spawner *adopts* (increments) before the thread
//! exists, and a dying worker that is being replaced runs its
//! replacement's adopt *before* its own retire — so an observer can
//! never see the pool smaller than it really is and conclude, say,
//! that teardown is finished while a respawn is in flight.
//!
//! The count lives behind the [`crate::sync`] facade; the loom model in
//! `tests/loom.rs` drives [`adopt`](LiveCount::adopt) /
//! [`retire`](LiveCount::retire) / [`handoff`](LiveCount::handoff)
//! through every interleaving, and the exhaustive offline checker in
//! `tests/protocol_model.rs` replays the same protocol at operation
//! granularity.

use crate::sync::atomic::AtomicUsize;
use std::sync::atomic::Ordering;

/// Threads currently in (or committed to entering) a worker loop.
pub struct LiveCount {
    n: AtomicUsize,
}

impl LiveCount {
    /// A fresh count of zero.  (Not `const`: loom's atomics cannot be
    /// constructed in const context.)
    pub fn new() -> LiveCount {
        LiveCount {
            n: AtomicUsize::new(0),
        }
    }

    /// A spawner commits a new worker: increments *before* the thread
    /// is created, so the count covers the gap between spawn request
    /// and first instruction.
    pub fn adopt(&self) {
        self.n.fetch_add(1, Ordering::SeqCst);
    }

    /// Rolls an [`adopt`](LiveCount::adopt) back after the spawn itself
    /// failed — the committed worker will never run.
    pub fn abandon(&self) {
        self.n.fetch_sub(1, Ordering::SeqCst);
    }

    /// A worker leaves its loop for good.
    pub fn retire(&self) {
        self.n.fetch_sub(1, Ordering::SeqCst);
    }

    /// The respawn handoff: `spawn_replacement` (which must
    /// [`adopt`](LiveCount::adopt) on success — and may fail, adopting
    /// nothing) runs strictly *before* the dying worker's own retire.
    /// Replacement-first ordering is what keeps the count from dipping:
    /// adopt(+1) then retire(−1) passes through `n`, never `n − 1`.
    pub fn handoff(&self, spawn_replacement: impl FnOnce()) {
        spawn_replacement();
        self.retire();
    }

    /// Current count.
    pub fn get(&self) -> usize {
        self.n.load(Ordering::SeqCst)
    }
}

impl Default for LiveCount {
    fn default() -> LiveCount {
        LiveCount::new()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn adopt_retire_round_trips() {
        let c = LiveCount::new();
        assert_eq!(c.get(), 0);
        c.adopt();
        c.adopt();
        assert_eq!(c.get(), 2);
        c.retire();
        assert_eq!(c.get(), 1);
        c.abandon();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn handoff_runs_replacement_before_retire() {
        let c = LiveCount::new();
        c.adopt(); // the worker that is about to die
        c.handoff(|| {
            // Inside the handoff the dying worker is still counted.
            assert_eq!(c.get(), 1);
            c.adopt();
            assert_eq!(c.get(), 2);
        });
        // Replacement adopted, original retired: back to one.
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn failed_replacement_still_retires_the_original() {
        let c = LiveCount::new();
        c.adopt();
        c.handoff(|| { /* spawn failed: nothing adopted */ });
        assert_eq!(c.get(), 0);
    }
}

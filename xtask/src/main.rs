//! `cargo xtask` — workspace automation, dependency-free by design.
//!
//! Subcommands:
//!
//! * `audit-unsafe [ROOT]` — the enforced unsafe-audit lint (see
//!   [`audit`]): every `unsafe` block / impl / fn in the workspace must
//!   carry an adjacent `// SAFETY:` comment, and every package whose
//!   sources contain no `unsafe` at all must pin that status with
//!   `#![forbid(unsafe_code)]` at its crate root.  Exits nonzero (and
//!   prints one line per violation) when the tree fails the audit; CI
//!   runs it on every push.
//!
//! The `xtask` pattern keeps this tooling inside the workspace — same
//! toolchain, same lints, no external binary to install — and the
//! `.cargo/config.toml` alias makes `cargo xtask audit-unsafe` work from
//! any directory in the repo.

#![forbid(unsafe_code)]
// This crate's docs talk *about* `SAFETY:` comments; clippy mistakes the
// mentions for misplaced safety comments.
#![allow(clippy::unnecessary_safety_comment)]

mod audit;

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // xtask lives at <root>/xtask; the workspace root is one up.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask has a parent directory")
        .to_path_buf()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("audit-unsafe") => {
            let root = args.get(1).map_or_else(workspace_root, PathBuf::from);
            let report = match audit::audit_workspace(&root) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("audit-unsafe: cannot scan {}: {e}", root.display());
                    return ExitCode::FAILURE;
                }
            };
            for v in &report.violations {
                eprintln!("{v}");
            }
            if report.violations.is_empty() {
                println!(
                    "audit-unsafe: ok — {} unsafe site(s) justified across {} package(s), \
                     {} package(s) forbid unsafe_code",
                    report.unsafe_sites, report.packages, report.forbidding_packages
                );
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "audit-unsafe: {} violation(s); every unsafe block/impl/fn needs an \
                     adjacent `// SAFETY:` comment and unsafe-free packages need \
                     `#![forbid(unsafe_code)]`",
                    report.violations.len()
                );
                ExitCode::FAILURE
            }
        }
        Some(other) => {
            eprintln!("xtask: unknown subcommand `{other}` (try: audit-unsafe)");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo xtask audit-unsafe [ROOT]");
            ExitCode::FAILURE
        }
    }
}

//! The unsafe-audit lint: a dependency-free scanner enforcing the
//! workspace's two unsafe-hygiene invariants.
//!
//! 1. **Every `unsafe` occurrence is justified.**  Each `unsafe`
//!    keyword — block, `unsafe impl`, or `unsafe fn` — must have a
//!    `// SAFETY:` comment adjacent to it: on the same line, or in the
//!    contiguous run of comment / attribute lines directly above (a
//!    blank line breaks adjacency).  This is deliberately the same
//!    convention clippy's `undocumented_unsafe_blocks` checks for
//!    blocks and impls; the audit extends it to `unsafe fn` items and
//!    runs without clippy (so it gates even a bare `cargo xtask` CI
//!    leg or an offline machine).
//! 2. **Unsafe-free packages stay unsafe-free.**  A package whose
//!    `src/` tree contains no `unsafe` token at all must declare
//!    `#![forbid(unsafe_code)]` at its crate root, so a future unsafe
//!    block cannot slip in without tripping the compiler *and* showing
//!    up in this audit.
//!
//! The scanner is a line-faithful lexer, not a parser: it masks out
//! comments, strings (raw / byte / all hash depths), char literals and
//! lifetimes, then looks for the bare `unsafe` token in what remains.
//! That makes it immune to `"unsafe"` in strings and docs while keeping
//! exact line numbers for reports.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One audit failure, displayed as `path:line: message`.
#[derive(Debug, PartialEq, Eq)]
pub struct Violation {
    pub file: PathBuf,
    /// 1-based line; 0 for package-level violations.
    pub line: usize,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: {}", self.file.display(), self.message)
        } else {
            write!(f, "{}:{}: {}", self.file.display(), self.line, self.message)
        }
    }
}

/// What [`audit_workspace`] found.
#[derive(Debug, Default)]
pub struct Report {
    pub violations: Vec<Violation>,
    /// Total `unsafe` tokens audited (justified or not).
    pub unsafe_sites: usize,
    /// Packages scanned.
    pub packages: usize,
    /// Packages carrying `#![forbid(unsafe_code)]`.
    pub forbidding_packages: usize,
}

/// Directories never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", ".claude", "node_modules"];

/// Audits every package under `root` (any directory holding a
/// `Cargo.toml` with a `[package]` section).  Files belonging to a
/// nested package are attributed to that package, not its parent.
pub fn audit_workspace(root: &Path) -> io::Result<Report> {
    let mut packages = Vec::new();
    find_packages(root, &mut packages)?;
    if packages.is_empty() {
        return Err(io::Error::other(format!(
            "no Cargo package found under {}",
            root.display()
        )));
    }
    let mut report = Report {
        packages: packages.len(),
        ..Report::default()
    };
    for pkg in &packages {
        audit_package(pkg, &mut report)?;
    }
    // Deterministic output order regardless of directory iteration.
    report
        .violations
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(report)
}

/// Recursively collects directories containing a `[package]` manifest.
fn find_packages(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let manifest = dir.join("Cargo.toml");
    if manifest.is_file() {
        let text = fs::read_to_string(&manifest)?;
        if text.lines().any(|l| l.trim() == "[package]") {
            out.push(dir.to_path_buf());
        }
    }
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if !path.is_dir() {
            continue;
        }
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
            continue;
        }
        find_packages(&path, out)?;
    }
    Ok(())
}

/// Audits one package directory: SAFETY adjacency for every `unsafe`
/// token in every `.rs` file, and the `forbid(unsafe_code)` requirement
/// when the `src/` tree is unsafe-free.
fn audit_package(pkg: &Path, report: &mut Report) -> io::Result<()> {
    let mut rs_files = Vec::new();
    collect_rs_files(pkg, pkg, &mut rs_files)?;
    rs_files.sort();

    let mut src_has_unsafe = false;
    for file in &rs_files {
        let text = fs::read_to_string(file)?;
        let sites = unsafe_sites(&text);
        report.unsafe_sites += sites.len();
        if !sites.is_empty() && file.starts_with(pkg.join("src")) {
            src_has_unsafe = true;
        }
        for line in sites {
            if !justified(&text, line) {
                report.violations.push(Violation {
                    file: file.clone(),
                    line,
                    message: "`unsafe` without an adjacent `// SAFETY:` comment".into(),
                });
            }
        }
    }

    // Crate root of the package's primary target.
    let root_file = ["src/lib.rs", "src/main.rs"]
        .iter()
        .map(|p| pkg.join(p))
        .find(|p| p.is_file());
    if let Some(root_file) = root_file {
        if !src_has_unsafe {
            let text = fs::read_to_string(&root_file)?;
            let forbids =
                mask_code(&text).contains("forbid") && text.contains("#![forbid(unsafe_code)]");
            if forbids {
                report.forbidding_packages += 1;
            } else {
                report.violations.push(Violation {
                    file: root_file,
                    line: 0,
                    message: "package has no unsafe code but its crate root is missing \
                              `#![forbid(unsafe_code)]`"
                        .into(),
                });
            }
        }
    }
    Ok(())
}

/// Collects `.rs` files under `dir`, skipping nested packages (any
/// subdirectory with its own `Cargo.toml`) and [`SKIP_DIRS`].
fn collect_rs_files(pkg: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref())
                || name.starts_with('.')
                || (dir != pkg && path.join("Cargo.toml").is_file())
                || (dir == pkg && path.join("Cargo.toml").is_file() && name != "src")
            {
                continue;
            }
            // A nested package anywhere below stops this package's walk.
            if path.join("Cargo.toml").is_file() {
                continue;
            }
            collect_rs_files(pkg, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// 1-based line numbers of every bare `unsafe` token in `text`
/// (comments, strings, chars and lifetimes masked out first).
fn unsafe_sites(text: &str) -> Vec<usize> {
    let masked = mask_code(text);
    let bytes = masked.as_bytes();
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    while i < bytes.len() {
        match bytes[i] {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b'u' if masked[i..].starts_with("unsafe")
                && (i == 0 || !is_ident(bytes[i - 1]))
                && bytes.get(i + 6).is_none_or(|&b| !is_ident(b)) =>
            {
                out.push(line);
                i += 6;
            }
            _ => i += 1,
        }
    }
    out
}

/// Whether the `unsafe` token on 1-based `line` has an adjacent
/// justification: a `SAFETY:` comment on the same line (trailing), or
/// anywhere in the contiguous run of comment / attribute lines directly
/// above it.  For `unsafe trait` / `unsafe fn` *declarations* the
/// idiomatic form is a `# Safety` doc section, which counts too.
fn justified(text: &str, line: usize) -> bool {
    let has_marker = |l: &str| l.contains("SAFETY:") || l.contains("# Safety");
    let lines: Vec<&str> = text.lines().collect();
    let idx = line - 1;
    if lines.get(idx).is_some_and(|l| has_marker(l)) {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let t = lines[i].trim_start();
        let is_adjacent = t.starts_with("//") || t.starts_with("#[") || t.starts_with("*");
        if !is_adjacent {
            return false;
        }
        if has_marker(t) {
            return true;
        }
    }
    false
}

/// Replaces the contents of comments, string literals (plain / raw /
/// byte, any hash depth), char literals and lifetime ticks with spaces,
/// preserving every newline so line numbers survive.
fn mask_code(text: &str) -> String {
    let b = text.as_bytes();
    let mut out = vec![b' '; b.len()];
    let mut i = 0usize;
    let n = b.len();
    // Copy a byte through to the mask.
    macro_rules! keep {
        ($idx:expr) => {
            out[$idx] = b[$idx]
        };
    }
    while i < n {
        let c = b[i];
        match c {
            b'\n' => {
                out[i] = b'\n';
                i += 1;
            }
            b'/' if i + 1 < n && b[i + 1] == b'/' => {
                // Line comment: mask to end of line.
                while i < n && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < n && b[i + 1] == b'*' => {
                // Block comment, nesting tracked.
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if b[i] == b'\n' {
                        out[i] = b'\n';
                        i += 1;
                    } else if i + 1 < n && b[i] == b'/' && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if i + 1 < n && b[i] == b'*' && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'r' | b'b' if is_raw_string_start(b, i) => {
                i = skip_raw_string(b, &mut out, i);
            }
            b'b' if i + 1 < n && b[i + 1] == b'\'' => {
                i = skip_char_literal(b, i + 1);
            }
            b'b' if i + 1 < n && b[i + 1] == b'"' => {
                i = skip_string(b, &mut out, i + 1);
            }
            b'"' => {
                i = skip_string(b, &mut out, i);
            }
            b'\'' => {
                i = skip_char_literal(b, i);
            }
            _ => {
                keep!(i);
                i += 1;
            }
        }
    }
    String::from_utf8(out).expect("masking only writes ASCII over ASCII positions")
}

/// Whether `r"`, `r#"`, `br"`, `br#"`... starts at `i`.
fn is_raw_string_start(b: &[u8], i: usize) -> bool {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j >= b.len() || b[j] != b'r' {
        return false;
    }
    j += 1;
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    j < b.len() && b[j] == b'"'
}

/// Masks a raw string starting at `i`; returns the index past it.
fn skip_raw_string(b: &[u8], out: &mut [u8], i: usize) -> usize {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    j += 1; // 'r'
    let mut hashes = 0usize;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    j += 1; // opening quote
    loop {
        if j >= b.len() {
            return j;
        }
        if b[j] == b'\n' {
            out[j] = b'\n';
            j += 1;
        } else if b[j] == b'"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while k < b.len() && seen < hashes && b[k] == b'#' {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return k;
            }
            j += 1;
        } else {
            j += 1;
        }
    }
}

/// Masks a plain string starting at the `"` at `i`; returns the index
/// past the closing quote.
fn skip_string(b: &[u8], out: &mut [u8], i: usize) -> usize {
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            // An escape may be a line continuation (`\` + newline):
            // keep the newline so line numbers stay exact.
            b'\\' => {
                if b.get(j + 1) == Some(&b'\n') {
                    out[j + 1] = b'\n';
                }
                j += 2;
            }
            b'\n' => {
                out[j] = b'\n';
                j += 1;
            }
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// Skips a char literal (`'x'`, `'\n'`, `'\u{1F600}'`) or a lifetime
/// tick at `i`; returns the index to resume from.
fn skip_char_literal(b: &[u8], i: usize) -> usize {
    let n = b.len();
    // `'\...'` — escaped char literal.
    if i + 1 < n && b[i + 1] == b'\\' {
        let mut j = i + 2;
        while j < n && b[j] != b'\'' {
            j += 1;
        }
        return (j + 1).min(n);
    }
    // `'c'` — plain char literal (the char may be multi-byte UTF-8).
    let mut j = i + 1;
    while j < n && j - i <= 5 {
        if b[j] == b'\'' {
            return j + 1;
        }
        if b[j] == b'\n' {
            break;
        }
        j += 1;
    }
    // A lifetime (`'a`): just step over the tick.
    i + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_hides_strings_comments_chars_and_lifetimes() {
        let src = r####"
fn f<'a>(x: &'a str) {
    let _ = "unsafe in a string";
    let _ = r#"unsafe in a raw string"#;
    let _ = b"unsafe bytes";
    let _ = 'u'; let _ = '\n';
    // unsafe in a line comment
    /* unsafe in a /* nested */ block comment */
}
"####;
        assert!(unsafe_sites(src).is_empty(), "masked regions leaked");
        // Identifiers containing the word are not tokens.
        assert!(unsafe_sites("fn unsafe_code() { unsafe_op_in_unsafe_fn(); }").is_empty());
    }

    #[test]
    fn token_detection_reports_exact_lines() {
        let src = "fn main() {\n    let p = unsafe { f() };\n}\nunsafe impl Send for X {}\n";
        assert_eq!(unsafe_sites(src), vec![2, 4]);
    }

    #[test]
    fn string_line_continuations_keep_line_numbers_exact() {
        // A `\` + newline inside a string spans lines; the masker must
        // preserve that newline or every later line number drifts.
        let src = "let s = \"first \\\n         second\";\nunsafe { f() }\n";
        assert_eq!(unsafe_sites(src), vec![3]);
    }

    #[test]
    fn safety_doc_section_justifies_declarations() {
        let src = "/// Does things.\n///\n/// # Safety\n///\n/// Caller checks x.\npub unsafe fn f() {}\n";
        assert!(justified(src, 6));
    }

    #[test]
    fn justification_accepts_same_line_and_adjacent_comment_blocks() {
        let same = "let p = unsafe { f() }; // SAFETY: f is fine\n";
        assert!(justified(same, 1));
        let above = "// SAFETY: ptr is live\n// for the whole call.\nunsafe { g() }\n";
        assert!(justified(above, 3));
        let with_attr = "// SAFETY: POD transmute\n#[inline]\nunsafe fn h() {}\n";
        assert!(justified(with_attr, 3));
        let blank_breaks = "// SAFETY: stale\n\nunsafe { g() }\n";
        assert!(!justified(blank_breaks, 3));
        let none = "let x = 1;\nunsafe { g() }\n";
        assert!(!justified(none, 2));
    }

    /// Builds a throwaway package tree and audits it.
    fn audit_fixture(files: &[(&str, &str)]) -> Report {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let root = std::env::temp_dir().join(format!(
            "minctx-audit-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        for (path, content) in files {
            let p = root.join(path);
            fs::create_dir_all(p.parent().unwrap()).unwrap();
            fs::write(&p, content).unwrap();
        }
        let r = audit_workspace(&root);
        fs::remove_dir_all(&root).ok();
        r.unwrap()
    }

    const MANIFEST: &str = "[package]\nname = \"t\"\n";

    #[test]
    fn seeded_violation_fails_the_audit() {
        // The negative test the acceptance criteria demand: an
        // unjustified unsafe block must fail the audit.
        let r = audit_fixture(&[
            ("Cargo.toml", MANIFEST),
            (
                "src/lib.rs",
                "pub fn f() -> u8 {\n    unsafe { *std::ptr::null::<u8>() }\n}\n",
            ),
        ]);
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert_eq!(r.violations[0].line, 2);
        assert!(r.violations[0].message.contains("SAFETY"));
    }

    #[test]
    fn justified_unsafe_passes() {
        let r = audit_fixture(&[
            ("Cargo.toml", MANIFEST),
            (
                "src/lib.rs",
                "pub fn f() -> u8 {\n    // SAFETY: this test never runs it.\n    unsafe { 0 }\n}\n",
            ),
        ]);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert_eq!(r.unsafe_sites, 1);
    }

    #[test]
    fn unsafe_free_package_must_forbid() {
        let r = audit_fixture(&[("Cargo.toml", MANIFEST), ("src/lib.rs", "pub fn f() {}\n")]);
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert!(r.violations[0].message.contains("forbid(unsafe_code)"));

        let r = audit_fixture(&[
            ("Cargo.toml", MANIFEST),
            ("src/lib.rs", "#![forbid(unsafe_code)]\npub fn f() {}\n"),
        ]);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert_eq!(r.forbidding_packages, 1);
    }

    #[test]
    fn unsafe_in_tests_is_audited_but_does_not_block_forbid() {
        // Integration tests are separate crates: the lib can (and must)
        // still forbid, while the test's unsafe needs its SAFETY.
        let r = audit_fixture(&[
            ("Cargo.toml", MANIFEST),
            ("src/lib.rs", "#![forbid(unsafe_code)]\npub fn f() {}\n"),
            (
                "tests/t.rs",
                "#[test]\nfn t() {\n    // SAFETY: (test) no-op.\n    unsafe {}\n}\n",
            ),
        ]);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert_eq!(r.unsafe_sites, 1);
    }

    #[test]
    fn nested_packages_are_audited_independently() {
        let r = audit_fixture(&[
            ("Cargo.toml", MANIFEST),
            ("src/lib.rs", "#![forbid(unsafe_code)]\n"),
            ("sub/Cargo.toml", MANIFEST),
            ("sub/src/lib.rs", "pub fn g() {\n    unsafe {}\n}\n"),
        ]);
        // Exactly one violation, in the nested package.
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert!(r.violations[0].file.ends_with("sub/src/lib.rs"));
        assert_eq!(r.packages, 2);
    }

    #[test]
    fn the_real_workspace_passes_its_own_audit() {
        // The audit that gates CI, run as a tier-1 unit test: the tree
        // this xtask ships in must always pass it.
        let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .to_path_buf();
        let r = audit_workspace(&root).unwrap();
        assert!(
            r.violations.is_empty(),
            "workspace fails its own unsafe audit:\n{}",
            r.violations
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(r.unsafe_sites > 0, "the scanner found no unsafe at all");
        assert!(r.forbidding_packages >= 5, "forbid coverage regressed");
    }
}

//! # minctx — polynomial-time XPath 1.0 evaluation
//!
//! A faithful, production-quality implementation of *"XPath Query
//! Evaluation: Improving Time and Space Efficiency"* (G. Gottlob, C. Koch,
//! R. Pichler, ICDE 2003): the **MINCONTEXT** and **OPTMINCONTEXT**
//! algorithms, the **Extended Wadler** and **Core XPath** fragments, plus
//! the context-value-table evaluator of the predecessor paper (VLDB 2002)
//! and a deliberately naive exponential evaluator that models the XPath
//! engines of the time.
//!
//! ## Architecture
//!
//! The workspace is layered; this facade crate re-exports all of it:
//!
//! * [`obs`] — the observability substrate below everything else:
//!   a zero-dependency metrics registry and the query-lifecycle
//!   tracing/EXPLAIN machinery (see "Observability" below).
//! * [`xml`] — the data substrate: an arena [`Document`](xml::Document)
//!   whose [`NodeId`](xml::NodeId)s are pre-order indices (document order
//!   is integer comparison, subtrees are contiguous ranges), a from-scratch
//!   XML parser, [`NodeSet`](xml::NodeSet)s, and the `O(|D|)` axis algebra
//!   of Definition 1 ([`axis_image`](xml::axes::axis_image) /
//!   [`axis_preimage`](xml::axes::axis_preimage)).
//! * [`syntax`] — the query pipeline: lexer → parser → normalizer (the
//!   paper's Section 2.2 core form: explicit conversions, positional
//!   rewriting, the `id()`→id-axis rewriting of Section 4, union lifting)
//!   → [`Query`](syntax::Query) lowering with the relevant-context sets
//!   `Relev(N)` of Section 3.1.
//! * [`engine`] — four interchangeable evaluators behind
//!   [`Engine`](engine::Engine), selected by a
//!   [`Strategy`](engine::Strategy) and extensible through the
//!   [`Evaluator`](engine::Evaluator) trait:
//!
//! | Strategy            | Algorithm                                | Behavior                        |
//! |---------------------|------------------------------------------|---------------------------------|
//! | `Naive`             | context-at-a-time recursion (Section 1)  | exponential in query size       |
//! | `ContextValueTable` | bottom-up full tables (VLDB 2002)        | polynomial, cubic space         |
//! | `MinContext`        | relevant-context evaluation (Section 3)  | `O(|D|·|Q|)` on Core XPath      |
//! | `OptMinContext`     | + backward axis propagation (Section 4)  | `O(|D|)` existential predicates |
//!
//! All strategies produce the same [`Value`](engine::Value) domain and are
//! continuously cross-checked by a differential corpus (see
//! `crates/core/tests/differential.rs`), so optimization work on any one
//! backend is oracle-tested against the other three.
//!
//! Four layers keep the constant factors down (see DESIGN.md): the
//! **query-IR rewrite pipeline** (`minctx_core::rewrite`, on by default,
//! toggleable via `Engine::with_optimizer`) that fuses `//a`-style step
//! chains, normalizes reverse axes, folds constants and shares common
//! subexpressions before compilation; a per-label **postings index** on
//! every [`Document`](xml::Document) that makes name-test axis steps
//! sublinear; [`CompiledQuery`](engine::CompiledQuery), cached inside the
//! [`Engine`](engine::Engine) per `(query, document)` so repeated
//! evaluation does zero name resolution; and a reusable
//! [`Scratch`](xml::Scratch) arena that eliminates per-axis-call `O(|D|)`
//! allocations.
//!
//! ## Quickstart
//!
//! ```
//! use minctx::prelude::*;
//!
//! let doc = minctx::xml::parse("<a><b>1</b><b>2</b><c>3</c></a>").unwrap();
//! let engine = Engine::new(Strategy::OptMinContext);
//! let result = engine.evaluate_str(&doc, "/child::a/child::b").unwrap();
//! let nodes = result.into_node_set().unwrap();
//! assert_eq!(nodes.len(), 2);
//! ```
//!
//! Scalar results and the other strategies work the same way:
//!
//! ```
//! use minctx::prelude::*;
//!
//! let doc = minctx::xml::parse("<a><b>5</b><b>7</b></a>").unwrap();
//! for strategy in Strategy::ALL {
//!     let v = Engine::new(strategy).evaluate_str(&doc, "sum(/a/b)").unwrap();
//!     assert_eq!(v.number(&doc), 12.0);
//! }
//! ```
//!
//! Every strategy meters its work against a fuel/deadline
//! [`Budget`](engine::Budget), so the Section-1 blow-up is observable
//! without being suffered — and a serving loop can bound any evaluation:
//!
//! ```
//! use minctx::prelude::*;
//!
//! let doc = minctx::xml::parse("<a><b/><b/></a>").unwrap();
//! let naive = Engine::new(Strategy::Naive).with_budget(10_000);
//! let q = "//b".to_string() + &"/parent::a/child::b".repeat(30);
//! assert!(matches!(
//!     naive.evaluate_str(&doc, &q),
//!     Err(EvalError::BudgetExhausted { .. })
//! ));
//! // The same query is instant under MINCONTEXT.
//! let v = Engine::new(Strategy::MinContext).evaluate_str(&doc, &q).unwrap();
//! assert_eq!(v.into_node_set().unwrap().len(), 2);
//! ```
//!
//! ## Streaming
//!
//! For read-once workloads, [`stream`] evaluates the forward-axis
//! fragment in one SAX-style pass over XML *text* — no document arena is
//! built, and memory stays proportional to document depth plus the
//! result:
//!
//! ```
//! use minctx::prelude::*;
//!
//! let engine = Engine::new(Strategy::Streaming);
//! let query = parse_xpath("count(//b[@id])").unwrap();
//! let out = engine
//!     .evaluate_reader_str(&query, r#"<a><b id="1"/><b/></a>"#)
//!     .unwrap();
//! assert_eq!(out.streamed(), Some(&StreamValue::Number(1.0)));
//! ```
//!
//! Queries outside the streamable fragment (reverse axes the optimizer
//! cannot normalize away, positional predicates, `id()`, …) fall back to
//! parse-then-evaluate, and the outcome reports which construct forced
//! the fallback — see [`stream::classify`].
//!
//! ## Persistent snapshots
//!
//! For stored corpora, [`index`] snapshots a built document to disk and
//! reopens it **zero-copy** via `mmap` — the flat columns (pre-order
//! structure, packed kinds, CSR label postings, text heap, id index) are
//! adopted in place after an integrity scan, so reopening skips the XML
//! parser entirely (≥5× cheaper than re-parsing at the 10⁶-element
//! bench tier; see the `index/*` rows in `BENCH_baseline.json`):
//!
//! ```
//! use minctx::prelude::*;
//!
//! let doc = minctx::xml::parse(r#"<a><b id="k">7</b></a>"#).unwrap();
//! let path = std::env::temp_dir().join(format!("minctx-facade-{}.mctx", std::process::id()));
//! write_snapshot(&doc, &path).unwrap();
//!
//! // One-shot convenience: open + evaluate in one call…
//! let engine = Engine::new(Strategy::OptMinContext);
//! let q = parse_xpath("count(//b)").unwrap();
//! assert_eq!(engine.evaluate_snapshot(&path, &q).unwrap(), Value::Number(1.0));
//!
//! // …or open once and serve many queries; snapshot stamps are stable
//! // across reopens, so compiled-query caches keep hitting.
//! let corpus = open_snapshot(&path).unwrap();
//! assert_eq!(engine.evaluate_str(&corpus, "string(id('k'))").unwrap(),
//!            Value::String("7".into()));
//! # std::fs::remove_file(&path).ok();
//! ```
//!
//! Truncated, bit-flipped or incompatible snapshot files are rejected
//! with an actionable [`SnapshotError`](index::SnapshotError) — never a
//! panic — and every corpus document round-trips exactly: owned and
//! snapshot-backed evaluation agree query-for-query under all four
//! arena strategies (`crates/bench/tests/snapshot_differential.rs`).
//!
//! ## Concurrent serving
//!
//! [`serve`] turns all of the above into a query service: a
//! [`ServeEngine`](serve::ServeEngine) pool of worker threads sharing
//! one immutable document (or mmap-ed snapshot) with zero copies —
//! snapshots are cached by **content stamp** (peeked from the file
//! header), compiled queries by `(query, document stamp)`, both behind
//! sharded LRUs — and every request carries its own fuel/deadline
//! [`Budget`](engine::Budget), anchored at submission so queue wait
//! counts against the deadline:
//!
//! ```
//! use minctx::prelude::*;
//! use std::sync::Arc;
//!
//! let doc = Arc::new(minctx::xml::parse("<a><b>1</b><b>2</b></a>").unwrap());
//! let serve = ServeEngine::builder().workers(2).build();
//! let ticket = serve.query(Corpus::Document(Arc::clone(&doc)), "count(//b)");
//! assert_eq!(ticket.wait().unwrap(), Value::Number(2.0));
//!
//! // A hopeless deadline is shed as an error, never a hung worker.
//! let err = serve
//!     .query_with_budget(
//!         Corpus::Document(doc),
//!         "count(//*)",
//!         Budget::timeout(std::time::Duration::ZERO),
//!     )
//!     .wait()
//!     .unwrap_err();
//! assert!(matches!(err, ServeError::Eval(EvalError::BudgetExhausted { .. })));
//! ```
//!
//! ## Fault tolerance
//!
//! The service degrades loudly, never silently: a request that panics a
//! worker resolves *its own* ticket as
//! [`ServeError::WorkerPanicked`](serve::ServeError::WorkerPanicked)
//! while the worker rebuilds and keeps serving (dead threads respawn);
//! a queue at capacity fast-rejects new requests as
//! [`ServeError::Overloaded`](serve::ServeError::Overloaded) — both are
//! [retryable](serve::ServeError::is_retryable), and
//! [`query_with_retry`](serve::ServeEngine::query_with_retry) wraps
//! resubmission under a deterministic exponential
//! [`RetryPolicy`](serve::RetryPolicy).  On the storage side,
//! [`write_snapshot`](index::write_snapshot) commits through a hidden
//! temp file, fsync, atomic rename and directory fsync — a writer
//! killed at any byte leaves the published path untouched — and files
//! that fail validation can be moved aside via
//! [`open_snapshot_or_quarantine`](index::open_snapshot_or_quarantine).
//! The [`serve::chaos`] and [`index::fault`] modules inject seeded
//! panics and torn writes so every one of these claims is exercised by
//! `crates/serve/tests/chaos.rs`, the crash-simulation half of
//! `crates/index/tests/corrupt.rs`, and the `chaos_smoke` binary.
//!
//! ## Observability
//!
//! [`obs`] is the zero-dependency substrate the rest of the workspace
//! reports through: a metrics [`Registry`](obs::Registry) (counters,
//! gauges, lock-free histograms; Prometheus-text and JSON exposition)
//! and a query-lifecycle [`Recorder`](obs::Recorder) whose RAII spans
//! cover parse → rewrite → compile → evaluate/stream → serve.  The
//! default recorder is disabled and costs one untaken branch per span;
//! attach one via [`Engine::with_recorder`](engine::Engine::with_recorder)
//! or a serving request log via
//! [`ServeBuilder::request_log`](serve::ServeBuilder::request_log), and
//! read a pool's numbers with
//! [`ServeEngine::metrics_text`](serve::ServeEngine::metrics_text).
//!
//! [`Engine::explain`](engine::Engine::explain) answers "what will this
//! query actually do": the IR before/after the rewrite pipeline, which
//! rules fired, and per-step rows with the kernel route taken
//! (postings / walk / sweep) and input/output cardinalities:
//!
//! ```
//! use minctx::prelude::*;
//!
//! let doc = minctx::xml::parse(r#"<a><item id="1"/><item/></a>"#).unwrap();
//! let engine = Engine::new(Strategy::MinContext);
//! let profile = engine.explain(&doc, "//item[@id]").unwrap();
//! assert_eq!(profile.result, "node-set n=1");
//! assert!(profile.plan_text().contains("fired=fuse-descendant:1"));
//! assert!(profile.plan_text().contains("route="));
//! ```
//!
//! ## Parallel evaluation
//!
//! [`Engine::with_threads`](engine::Engine::with_threads) turns on
//! intra-query data parallelism: large axis sweeps split the flat
//! postings/arena columns into index-range chunks across a scoped
//! worker pool, and predicated steps fan their context sets out with
//! per-worker fuel sub-allowances — results are **bit-identical** to
//! sequential evaluation, ordinals included (chunks are disjoint
//! ascending ranges merged in chunk order; the differential corpus runs
//! at threads 1/2/4 to hold the line).  The default of 1 constructs no
//! pool at all and *is* the sequential path; small steps below the
//! split threshold (tunable via
//! [`Engine::with_par_threshold`](engine::Engine::with_par_threshold))
//! never pay coordination cost.  In the service, set
//! [`ServeBuilder::threads`](serve::ServeBuilder::threads) per worker
//! engine — total thread pressure is roughly `workers × threads`.
//! EXPLAIN step rows report dispatched chunk counts
//! ([`StepProfile::par_chunks`](engine::StepProfile), rendered as
//! ` par=K`), and the global registry carries `par/*` counters:
//!
//! ```
//! use minctx::prelude::*;
//!
//! let doc = minctx::xml::parse("<a><b/><b/></a>").unwrap();
//! let threaded = Engine::new(Strategy::OptMinContext).with_threads(4);
//! let sequential = Engine::new(Strategy::OptMinContext);
//! assert_eq!(
//!     threaded.evaluate_str(&doc, "//b").unwrap(),
//!     sequential.evaluate_str(&doc, "//b").unwrap(),
//! );
//! ```
//!
//! ## Benchmarks
//!
//! `cargo run --release -p minctx-bench --bin tables` prints the paper's
//! strategy × document-size timing tables; `cargo bench -p minctx-bench`
//! runs the per-theorem harnesses (`thm7_mincontext`, `thm10_wadler`,
//! `thm13_corexpath`, `exp_query_size`, `axes`).

#![forbid(unsafe_code)]

pub use minctx_core as engine;
pub use minctx_index as index;
pub use minctx_obs as obs;
pub use minctx_serve as serve;
pub use minctx_stream as stream;
pub use minctx_syntax as syntax;
pub use minctx_xml as xml;

/// The most common imports, bundled.  (`ParConfig` rides along for
/// tuning `Engine::with_threads` split thresholds; the knob itself is a
/// method on `Engine`.)
pub mod prelude {
    pub use minctx_core::{
        Budget, CompiledQuery, Context, Engine, EvalError, Evaluator, ParConfig, QueryProfile,
        StepProfile, Strategy, Value,
    };
    pub use minctx_index::{
        open_snapshot, open_snapshot_or_quarantine, snapshot_stamp, write_snapshot, SnapshotError,
        SnapshotInfo,
    };
    pub use minctx_obs::{metrics_text, Recorder};
    pub use minctx_serve::{Corpus, RetryPolicy, ServeEngine, ServeError, Ticket};
    pub use minctx_stream::{
        classify, StreamMatch, StreamOutcome, StreamValue, Streamability, StreamingEngine,
    };
    pub use minctx_syntax::parse_xpath;
    pub use minctx_xml::{parse as parse_xml, Document, NodeId, NodeSet, Scratch};
}

//! # minctx — polynomial-time XPath 1.0 evaluation
//!
//! A faithful, production-quality implementation of
//! *"XPath Query Evaluation: Improving Time and Space Efficiency"*
//! (G. Gottlob, C. Koch, R. Pichler, ICDE 2003): the **MINCONTEXT** and
//! **OPTMINCONTEXT** algorithms, the **Extended Wadler** and **Core XPath**
//! fragments, plus the context-value-table evaluators of the predecessor
//! paper (VLDB 2002) and a deliberately naive exponential evaluator that
//! models the XPath engines of the time.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`xml`] — XML document model, parser, node sets, axis algebra;
//! * [`syntax`] — XPath 1.0 lexer, parser, normalizer, parse tree;
//! * [`engine`] — the evaluators and the [`Engine`](engine::Engine) entry
//!   point.
//!
//! ## Quickstart
//!
//! ```
//! use minctx::prelude::*;
//!
//! let doc = minctx::xml::parse("<a><b>1</b><b>2</b><c>3</c></a>").unwrap();
//! let engine = Engine::new(Strategy::OptMinContext);
//! let result = engine.evaluate_str(&doc, "/child::a/child::b").unwrap();
//! let nodes = result.into_node_set().unwrap();
//! assert_eq!(nodes.len(), 2);
//! ```

pub use minctx_core as engine;
pub use minctx_syntax as syntax;
pub use minctx_xml as xml;

/// The most common imports, bundled.
pub mod prelude {
    pub use minctx_core::{Engine, EvalError, Strategy, Value};
    pub use minctx_syntax::parse_xpath;
    pub use minctx_xml::{parse as parse_xml, Document, NodeId, NodeSet};
}
